"""Cost experiments: the randomized algorithms and the ablations."""

from __future__ import annotations

from repro.algorithms.greedy_by_color import GreedyMISByColor
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.analysis.stats import RunStats, aggregate
from repro.analysis.sweeps import SweepRow, standard_family_specs
from repro.core.assignment_search import smallest_successful_assignment
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.fabric import GridSweep, register_grid, register_kernel
from repro.experiments._shared import colored
from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_graph,
    with_uniform_input,
)
from repro.graphs.coloring import is_two_hop_coloring
from repro.problems.mis import MISProblem
from repro.runtime.engine import execute

SEEDS = range(5)


@experiment("two-hop-cost", cost=6.0)
def two_hop_cost() -> ExperimentResult:
    """R1: rounds/bits of the generic randomized 2-hop coloring stage."""
    cases = [(f"cycle-{n}", with_uniform_input(cycle_graph(n))) for n in (4, 8, 16, 32)]
    cases += [
        (f"complete-{n}", with_uniform_input(complete_graph(n))) for n in (4, 6, 8)
    ]
    cases += [
        (f"random-{n}", with_uniform_input(random_connected_graph(n, 0.2, seed=n)))
        for n in (8, 16, 32)
    ]
    algorithm = TwoHopColoringAlgorithm()
    rows, checks = [], {}
    for name, graph in cases:
        runs = []
        for seed in SEEDS:
            result = execute(algorithm, graph, seed=seed, require_decided=True)
            checks[f"valid {name} seed {seed}"] = is_two_hop_coloring(
                graph, result.outputs
            )
            runs.append(RunStats.of(graph, result, algorithm.bits_per_round))
        agg = aggregate(runs)
        rows.append(
            SweepRow(
                name,
                {
                    "n": graph.num_nodes,
                    "mean rounds": agg.mean_rounds,
                    "max rounds": agg.max_rounds,
                    "mean bits": agg.mean_bits,
                },
            )
        )
    return ExperimentResult(
        experiment_id="two-hop-cost",
        title="R1 — randomized anonymous 2-hop coloring costs (5 seeds each)",
        columns=["n", "mean rounds", "max rounds", "mean bits"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# Fabric grid sweep: the R1 cost measurement over the full standard
# family sweep at sizes the in-registry experiment cannot afford, one
# atomic fabric task per (family, seed) point (see
# ``repro.experiments.fabric``).  The axis is the seed repetition alone,
# so ``values`` is the single ``None`` placeholder.
# ---------------------------------------------------------------------------


@register_kernel("two-hop-cost-point")
def two_hop_cost_kernel(graph, _value, seed: int) -> dict:
    """One grid point: rounds/bits/validity of one 2-hop coloring run."""
    algorithm = TwoHopColoringAlgorithm()
    result = execute(algorithm, graph, seed=seed, require_decided=True)
    stats = RunStats.of(graph, result, algorithm.bits_per_round)
    return {
        "rounds": stats.rounds,
        "total_bits": stats.total_bits,
        "total_messages": stats.total_messages,
        "valid": is_two_hop_coloring(graph, result.outputs),
    }


register_grid(
    GridSweep(
        name="two-hop-cost-grid",
        kernel="two-hop-cost-point",
        families=tuple(standard_family_specs(sizes=(8, 16, 24, 32))),
        axis="rep",
        values=(None,),
        seeds=tuple(range(5)),
        cost=3.0,
    )
)


@experiment("mis-cost", cost=6.0)
def mis_cost() -> ExperimentResult:
    """R2: randomized MIS vs the deterministic greedy-by-color baseline."""
    problem = MISProblem()
    cases = [(f"cycle-{n}", with_uniform_input(cycle_graph(n))) for n in (8, 16, 32)]
    cases.append(
        ("random-16", with_uniform_input(random_connected_graph(16, 0.15, seed=16)))
    )
    rows, checks = [], {}
    for name, graph in cases:
        runs, sizes = [], []
        for seed in SEEDS:
            result = execute(
                AnonymousMISAlgorithm(), graph, seed=seed, require_decided=True
            )
            checks[f"randomized valid {name} seed {seed}"] = problem.is_valid_output(
                graph, result.outputs
            )
            runs.append(RunStats.of(graph, result, 1))
            sizes.append(sum(result.outputs.values()))
        greedy = execute(GreedyMISByColor(), colored(graph), require_decided=True)
        checks[f"greedy valid {name}"] = problem.is_valid_output(graph, greedy.outputs)
        agg = aggregate(runs)
        rows.append(
            SweepRow(
                name,
                {
                    "n": graph.num_nodes,
                    "rand rounds": agg.mean_rounds,
                    "greedy rounds": greedy.rounds,
                    "rand |MIS|": sum(sizes) / len(sizes),
                    "greedy |MIS|": sum(greedy.outputs.values()),
                },
            )
        )
    return ExperimentResult(
        experiment_id="mis-cost",
        title="R2 — anonymous randomized MIS vs deterministic greedy-by-color",
        columns=["n", "rand rounds", "greedy rounds", "rand |MIS|", "greedy |MIS|"],
        rows=rows,
        checks=checks,
    )


@experiment("candidate-growth", cost=8.0)
def candidate_growth() -> ExperimentResult:
    """The super-exponential heart of A_*: how many (graph, labeling)
    pairs candidate enumeration examines, and how few survive C2/C3,
    as the phase and the node cap grow."""
    from repro.core.candidates import enumerate_candidates
    from repro.experiments._shared import lifted_colored_c3
    from repro.problems.problem import TwoHopColoredVariant
    from repro.views.local_views import view
    import repro.core.candidates as candidates_module

    _base, lift, _proj = lifted_colored_c3(2)
    instance = lift.with_layer("bits", {v: "" for v in lift.nodes})
    instance = instance.with_only_layers(["input", "color", "bits"])
    problem_c = TwoHopColoredVariant(MISProblem())

    rows, checks = [], {}
    previous_survivors = 0
    for phase, cap in [(2, 2), (3, 3), (4, 4)]:
        observed = view(instance, instance.nodes[0], phase)
        examined = {"n": 0}
        original = candidates_module._try_candidate

        def counting(*args, **kwargs):
            examined["n"] += 1
            return original(*args, **kwargs)

        candidates_module._try_candidate = counting
        try:
            survivors = enumerate_candidates(
                observed,
                phase,
                problem_c,
                ("input", "color", "bits"),
                max_nodes=cap,
                budget=500_000,
            )
        finally:
            candidates_module._try_candidate = original
        checks[f"survivors nonempty (p={phase})"] = phase < 3 or bool(survivors)
        checks[f"survival is sparse (p={phase})"] = len(survivors) <= max(
            1, examined["n"] // 10
        )
        rows.append(
            SweepRow(
                f"phase {phase}, cap {cap}",
                {
                    "examined": examined["n"],
                    "distinct finite view graphs": len(survivors),
                },
            )
        )
        previous_survivors = len(survivors)
    checks["converged to the quotient"] = previous_survivors >= 1
    return ExperimentResult(
        experiment_id="candidate-growth",
        title=(
            "ABL — candidate enumeration growth in A_*'s Update-Graph "
            "(examined pairs vs surviving candidates, colored C6)"
        ),
        columns=["examined", "distinct finite view graphs"],
        rows=rows,
        checks=checks,
    )


@experiment("success-curve", cost=5.0)
def success_curve() -> ExperimentResult:
    """The probability a random length-t assignment succeeds — the single
    quantity behind every search cost in the derandomization."""
    from repro.analysis.probability import measure_success_curve

    algorithm = AnonymousMISAlgorithm()
    rows, checks = [], {}
    for name, graph in [
        ("path-2", with_uniform_input(path_graph(2))),
        ("path-3", with_uniform_input(path_graph(3))),
        ("cycle-5", with_uniform_input(cycle_graph(5))),
    ]:
        curve = measure_success_curve(
            algorithm, graph, lengths=(2, 3, 4, 8, 16), samples_per_length=150
        )
        probabilities = dict(curve.points)
        checks[f"monotone-ish on {name}"] = all(
            later >= earlier - 0.1
            for earlier, later in zip(
                [p for _t, p in curve.points], [p for _t, p in curve.points][1:]
            )
        )
        checks[f"long assignments succeed on {name}"] = probabilities[16] >= 0.9
        rows.append(
            SweepRow(
                name,
                {f"p_{t}": probabilities[t] for t in (2, 3, 4, 8, 16)},
            )
        )
    return ExperimentResult(
        experiment_id="success-curve",
        title=(
            "ABL — success probability of a uniformly random assignment by "
            "length t (MIS): why PRG search at generous t is cheap and "
            "smallest-assignment search at minimal t is not"
        ),
        columns=["p_2", "p_3", "p_4", "p_8", "p_16"],
        rows=rows,
        checks=checks,
    )


@experiment("search-ablation", cost=2.0)
def search_ablation() -> ExperimentResult:
    """ABL: lexicographic vs PRG assignment-search order (trial counts)."""
    import repro.core.assignment_search as search_module

    algorithm = AnonymousMISAlgorithm()
    cases = [
        ("path-2", with_uniform_input(path_graph(2))),
        ("path-3", with_uniform_input(path_graph(3))),
        ("cycle-3", with_uniform_input(cycle_graph(3))),
    ]
    rows, checks = [], {}
    for name, graph in cases:
        order = list(graph.nodes)
        trials = {}
        for strategy in ("lexicographic", "prg"):
            counter = {"n": 0}
            original = search_module.execute

            def counting(*args, **kwargs):
                counter["n"] += 1
                return original(*args, **kwargs)

            search_module.execute = counting
            try:
                assignment = smallest_successful_assignment(
                    algorithm, graph, order, max_length=64, strategy=strategy
                )
            finally:
                search_module.execute = original
            checks[f"{strategy} valid on {name}"] = execute(
                algorithm, graph, assignment=assignment
            ).successful
            trials[strategy] = counter["n"]
        rows.append(
            SweepRow(
                name,
                {
                    "lex trials": trials["lexicographic"],
                    "prg trials": trials["prg"],
                },
            )
        )
    return ExperimentResult(
        experiment_id="search-ablation",
        title=(
            "ABL — paper's lexicographic smallest-assignment order vs the "
            "deterministic-PRG order (both legal under Lemma 1)"
        ),
        columns=["lex trials", "prg trials"],
        rows=rows,
        checks=checks,
    )
