"""The parallel experiment engine.

Fans the experiment registry (and arbitrary :class:`FamilySpec` sweeps)
out over a ``ProcessPoolExecutor`` while keeping every observable output
**bit-identical to a serial run**:

* **Deterministic per-task seeding** — each task's seed is derived from
  ``(experiment_id, family, size, base_seed)`` by :func:`derive_seed`
  (a SHA-256 hash, not Python's randomized ``hash``), so a task's
  randomness never depends on which worker ran it or in what order.
* **Deterministic assembly** — tasks are *dispatched* longest-first
  (using the registry's relative ``cost`` weights) for load balance,
  but results are *reported* in the caller's requested order.
* **Per-worker cache warm-up** — every worker starts by running
  ``repro.views.clear_caches()`` (which also fires all hooks installed
  via ``register_cache_clearer``), so worker cache state is cold and
  identical regardless of fork inheritance.
* **Chunked scheduling** — tasks are shipped in chunks (the ``--jobs``
  CLI knob maps to ``jobs`` here, ``chunk_size`` is derived from the
  task count unless given) to amortize IPC per task.
* **Graceful degradation** — if the pool cannot be created or breaks
  mid-run (sandboxed interpreters, missing ``fork``/semaphores, a
  killed worker), the engine transparently finishes the remaining
  tasks serially and records the reason in the report.

Each run can be persisted as a machine-readable JSON artifact
(``RESULTS_experiments.json``) whose shape mirrors ``BENCH_views.json``:
a schema version, machine/host metadata, engine metadata, and one row
per experiment with its table, checks and timing.  The deterministic
portion of the artifact (everything except machine/engine/timing) is
exposed by :func:`canonical_results` — the serial-vs-parallel identity
contract is that this portion is byte-equal for any ``jobs`` value.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.analysis.sweeps import FamilySpec, SweepRow
from repro.experiments.base import ExperimentResult, all_experiment_ids, get_spec
from repro.runtime.engine import collect_engine_metrics

__all__ = [
    "ExperimentRun",
    "FamilyOutcome",
    "RunReport",
    "canonical_results",
    "derive_seed",
    "execute_tasks",
    "experiment_entry",
    "map_families",
    "results_payload",
    "run_experiments",
    "write_results_json",
]

# Schema history: 2 = machine/engine metadata split out of rows;
# 3 = per-run engine metrics carry ``faults_injected`` (fault subsystem).
RESULTS_SCHEMA = 3


def derive_seed(
    experiment_id: str, family: str = "", size: int = 0, base_seed: int = 0
) -> int:
    """A deterministic 63-bit seed for one task.

    Derived by hashing the task's *identity* — never its position in
    the schedule — so serial and parallel runs (and reruns of a single
    task) see identical randomness.  SHA-256 is used instead of
    ``hash()`` because the latter is salted per interpreter process.
    """
    key = f"{experiment_id}\x1f{family}\x1f{size}\x1f{base_seed}"
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass
class ExperimentRun:
    """One experiment's result plus runner bookkeeping.

    ``engine_metrics`` aggregates the unified execution engine's
    instrumentation over every run the experiment performed (see
    :func:`repro.runtime.engine.collect_engine_metrics`): executions,
    rounds, messages sent, bits drawn, nodes decided, and engine wall
    time.  All fields except ``wall_s`` are deterministic.
    """

    result: ExperimentResult
    seed: int
    wall_s: float
    worker_pid: int
    mode: str  # "serial" | "parallel"
    engine_metrics: dict[str, Any] | None = None


@dataclass
class FamilyOutcome:
    """One family-sweep task's value plus runner bookkeeping."""

    family: str
    size: int
    seed: int
    value: Any
    wall_s: float
    worker_pid: int
    mode: str


@dataclass
class RunReport:
    """Everything one engine invocation produced."""

    runs: list[ExperimentRun]
    requested_jobs: int
    base_seed: int
    fallback_reason: str | None = None
    wall_s: float = 0.0

    @property
    def mode(self) -> str:
        if self.requested_jobs <= 1:
            return "serial"
        return "serial" if self.fallback_reason else "parallel"

    @property
    def all_passed(self) -> bool:
        return all(run.result.passed for run in self.runs)

    def results(self) -> list[ExperimentResult]:
        return [run.result for run in self.runs]


# ---------------------------------------------------------------------------
# Worker-side entry points.  These must stay top-level (picklable by
# qualified name) and must not capture any parent-process state beyond
# their arguments: under the ``spawn`` start method a worker re-imports
# this module from scratch.
# ---------------------------------------------------------------------------


def _worker_init() -> None:
    """Per-worker warm-up: reset every registered cache.

    Uses the ``repro.views`` cache infrastructure — ``clear_caches()``
    empties the intern/rank tables and fires every hook installed via
    ``register_cache_clearer`` (builder registry, refinement memo, …).
    Under ``fork`` a worker inherits whatever the parent had cached;
    clearing makes worker state cold and identical across start
    methods, schedules and job counts.
    """
    from repro.views import clear_caches

    clear_caches()


def _run_experiment_task(payload: tuple[str, int]) -> tuple[str, Any]:
    """Run one registered experiment; returns ``(experiment_id, outcome)``."""
    experiment_id, seed = payload
    import repro.experiments  # noqa: F401  (registration on spawn)

    # Wall-clock fields are stripped from canonical_results (timing only).
    start = time.perf_counter()  # repro-lint: disable=DET001 -- wall-time metric only
    with collect_engine_metrics() as totals:
        result = get_spec(experiment_id).run(seed=seed)
    wall = time.perf_counter() - start  # repro-lint: disable=DET001 -- wall-time metric only
    return experiment_id, (result, wall, os.getpid(), totals.as_dict())


def _run_family_task(
    payload: tuple[str, Callable[[str, Any, int], Any], FamilySpec, int],
) -> tuple[str, Any]:
    """Realize one family spec and apply the task callable to it."""
    name, task, spec, seed = payload
    start = time.perf_counter()  # repro-lint: disable=DET001 -- wall-time metric only
    value = task(spec.name, spec.build(), seed)
    return name, (value, time.perf_counter() - start, os.getpid())  # repro-lint: disable=DET001 -- wall-time metric only


# ---------------------------------------------------------------------------
# The generic execution core shared by both fan-out entry points.
# ---------------------------------------------------------------------------


def _default_executor_factory(jobs: int):
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=jobs, initializer=_worker_init)


def _chunk_size(task_count: int, jobs: int) -> int:
    """Default chunk: ~4 chunks per worker, so the longest-first order
    still load-balances while IPC is amortized over each chunk."""
    return max(1, task_count // (jobs * 4))


def execute_tasks(
    payloads: Sequence[tuple[Any, ...]],
    worker: Callable[[Any], tuple[str, Any]],
    jobs: int,
    chunk_size: int | None = None,
    executor_factory: Callable[[int], Any] | None = None,
    *,
    ordered: bool = True,
    on_result: Callable[[str, Any, str], None] | None = None,
) -> tuple[dict[str, Any], dict[str, str], str | None]:
    """The task/dispatch core: run ``worker`` over ``payloads``.

    Returns ``(outcomes, modes, fallback_reason)``.  ``payloads`` are
    dispatched in the given order; each payload's first element is its
    key.  Any pool-level failure (creation, pickling, broken pool)
    degrades to serial execution of whatever is missing — a task that
    *itself* raises will raise again serially, so the parallel path
    introduces no new failure modes.

    ``ordered=True`` (the registry runner) ships tasks in chunks via
    ``pool.map`` and collects results in payload order, amortizing IPC.
    ``ordered=False`` (the fabric) submits one task per future and
    collects in *completion* order — workers pull from the executor's
    shared queue as they free up (work stealing), and ``on_result``
    fires the moment a task lands, which is what lets the fabric
    persist each record before the next one is even scheduled.
    ``on_result(key, outcome, mode)`` is called exactly once per key in
    both modes, including for tasks finished on the serial fallback
    path.
    """
    outcomes: dict[str, Any] = {}
    modes: dict[str, str] = {}
    fallback_reason: str | None = None

    def record(key: str, outcome: Any, mode: str) -> None:
        outcomes[key] = outcome
        modes[key] = mode
        if on_result is not None:
            on_result(key, outcome, mode)

    if jobs > 1 and len(payloads) > 1:
        factory = executor_factory or _default_executor_factory
        chunk = chunk_size if chunk_size else _chunk_size(len(payloads), jobs)
        try:
            with factory(jobs) as pool:
                if ordered:
                    for key, outcome in pool.map(worker, payloads, chunksize=chunk):
                        record(key, outcome, "parallel")
                else:
                    from concurrent.futures import as_completed

                    futures = [pool.submit(worker, payload) for payload in payloads]
                    for future in as_completed(futures):
                        key, outcome = future.result()
                        record(key, outcome, "parallel")
        except Exception as exc:  # degrade, never fail the run
            fallback_reason = f"{type(exc).__name__}: {exc}"

    for payload in payloads:
        if payload[0] in outcomes:
            continue
        key, outcome = worker(payload)
        record(key, outcome, "serial")
    return outcomes, modes, fallback_reason


def run_experiments(
    experiment_ids: Iterable[str] | None = None,
    *,
    jobs: int = 1,
    base_seed: int = 0,
    chunk_size: int | None = None,
    executor_factory: Callable[[int], Any] | None = None,
) -> RunReport:
    """Run experiments (all of them by default), possibly in parallel.

    Results are reported in the requested order regardless of ``jobs``;
    the rows and checks of every :class:`ExperimentResult` are
    bit-identical for any job count.  ``executor_factory`` exists for
    tests (inject a pool that fails or misbehaves).
    """
    ids = list(experiment_ids) if experiment_ids is not None else all_experiment_ids()
    specs = [get_spec(eid) for eid in ids]  # validates; raises on unknown ids
    seeds = {eid: derive_seed(eid, base_seed=base_seed) for eid in ids}

    dispatch = sorted(specs, key=lambda spec: (-spec.cost, spec.experiment_id))
    payloads = [(spec.experiment_id, seeds[spec.experiment_id]) for spec in dispatch]

    start = time.perf_counter()  # repro-lint: disable=DET001 -- wall-time metric only
    outcomes, modes, fallback_reason = execute_tasks(
        payloads, _run_experiment_task, jobs, chunk_size, executor_factory
    )
    wall_s = time.perf_counter() - start  # repro-lint: disable=DET001 -- wall-time metric only

    runs = []
    for eid in ids:
        result, task_wall, pid, engine_metrics = outcomes[eid]
        runs.append(
            ExperimentRun(
                result=result,
                seed=seeds[eid],
                wall_s=task_wall,
                worker_pid=pid,
                mode=modes[eid],
                engine_metrics=engine_metrics,
            )
        )
    return RunReport(
        runs=runs,
        requested_jobs=jobs,
        base_seed=base_seed,
        fallback_reason=fallback_reason,
        wall_s=wall_s,
    )


def map_families(
    task: Callable[[str, Any, int], Any],
    specs: Sequence[FamilySpec],
    *,
    jobs: int = 1,
    base_seed: int = 0,
    chunk_size: int | None = None,
    executor_factory: Callable[[int], Any] | None = None,
) -> list[FamilyOutcome]:
    """Apply ``task(name, graph, seed)`` to every family spec.

    ``task`` must be a picklable top-level callable.  Each task's seed
    is ``derive_seed(task.__qualname__, family, size, base_seed)`` —
    a pure function of the task identity — so outcomes are bit-identical
    across job counts.  Graphs are realized inside the worker from the
    spec (cheap to ship, deterministic to build).
    """
    task_name = getattr(task, "__qualname__", task.__class__.__qualname__)
    seeds = [derive_seed(task_name, spec.name, spec.size, base_seed) for spec in specs]
    order = sorted(range(len(specs)), key=lambda i: (-specs[i].size, specs[i].name))
    payloads = [(f"{i}:{specs[i].name}", task, specs[i], seeds[i]) for i in order]

    outcomes, modes, _reason = execute_tasks(
        payloads, _run_family_task, jobs, chunk_size, executor_factory
    )
    results = []
    for i, spec in enumerate(specs):
        key = f"{i}:{spec.name}"
        value, task_wall, pid = outcomes[key]
        results.append(
            FamilyOutcome(
                family=spec.name,
                size=spec.size,
                seed=seeds[i],
                value=value,
                wall_s=task_wall,
                worker_pid=pid,
                mode=modes[key],
            )
        )
    return results


# ---------------------------------------------------------------------------
# JSON artifacts.
# ---------------------------------------------------------------------------


def _jsonify(value: Any) -> Any:
    """Deterministic JSON-safe projection of a table cell."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(item) for item in value)
    if isinstance(value, dict):
        return {str(key): _jsonify(val) for key, val in sorted(value.items())}
    return repr(value)


def _row_payload(row: SweepRow) -> dict[str, Any]:
    return {
        "label": row.label,
        "values": {key: _jsonify(val) for key, val in row.values.items()},
    }


def experiment_entry(result: ExperimentResult, seed: int) -> dict[str, Any]:
    """The canonical (deterministic) JSON entry for one experiment run.

    This is exactly the portion of a ``results`` entry that the
    serial-vs-parallel identity contract covers — no timing, no
    metrics, no worker bookkeeping.  The fabric stores this shape per
    task, so a resumed record and a fresh run are comparable byte for
    byte.
    """
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "passed": result.passed,
        "checks": dict(result.checks),
        "columns": list(result.columns),
        "rows": [_row_payload(row) for row in result.rows],
        "seed": seed,
    }


def results_payload(report: RunReport) -> dict[str, Any]:
    """The full JSON artifact for a run (mirrors ``BENCH_views.json``)."""
    return {
        "schema": RESULTS_SCHEMA,
        "suite": "experiments",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "engine": {
            "requested_jobs": report.requested_jobs,
            "mode": report.mode,
            "base_seed": report.base_seed,
            "fallback_reason": report.fallback_reason,
            "wall_s": report.wall_s,
        },
        "results": [
            {
                **experiment_entry(run.result, run.seed),
                "metrics": run.engine_metrics,
                "timing": {
                    "wall_s": run.wall_s,
                    "worker_pid": run.worker_pid,
                    "mode": run.mode,
                },
            }
            for run in report.runs
        ],
    }


def canonical_results(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """The deterministic portion of an artifact: per-experiment rows and
    checks with machine/engine/timing/metrics stripped.  Serial and
    parallel runs of the same experiments must agree on this
    byte-for-byte.  The ``metrics`` block is excluded because its
    ``wall_s`` field is a timing; its other fields are deterministic and
    covered by the perf suite's runtime trend data instead."""
    canonical = []
    for entry in payload["results"]:
        canonical.append(
            {
                key: entry[key]
                for key in sorted(entry)
                if key not in ("timing", "metrics")
            }
        )
    return canonical


def write_results_json(path: "str | Path", report: RunReport) -> Path:
    """Persist the run's artifact; returns the written path."""
    target = Path(path)
    target.write_text(json.dumps(results_payload(report), indent=2) + "\n")
    return target
