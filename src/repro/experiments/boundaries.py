"""Experiments at the edges of the theorem: the k-hop boundary, election
impossibility, fibrations, and port emulation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.monte_carlo_election import (
    MonteCarloElection,
    failure_probability_bound,
)
from repro.analysis.khop_boundary import lifted_khop_violation, uniform_cycle_cover
from repro.analysis.sweeps import SweepRow
from repro.analysis.symmetry import (
    election_is_deterministically_impossible,
    view_class_profile,
)
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments._shared import colored, lifted_colored_c3
from repro.factor.fibrations import (
    coloring_respects_symmetry,
    directed_representation,
    fibration_to_factorizing_map,
    is_deterministic_coloring,
    is_fibration,
    is_symmetric_representation,
)
from repro.graphs.builders import (
    circulant_graph,
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    star_graph,
    torus_graph,
    with_uniform_input,
)
from repro.problems.election import LEADER, LeaderElectionProblem, MinimalViewElection
from repro.runtime.engine import execute
from repro.runtime.port_model import PortAwareAlgorithm, PortEmulation
from repro.views.refinement import color_refinement


@experiment("khop", cost=3.0)
def khop_boundary() -> ExperimentResult:
    """Section 1.2: k-hop coloring is in GRAN iff k <= 2."""
    rows, checks = [], {}
    for factor, multiplier in [(3, 2), (3, 4), (4, 2), (5, 2), (6, 2)]:
        covering = uniform_cycle_cover(factor, multiplier)
        violation = lifted_khop_violation(covering, seed=2, max_k=8)
        label = f"C{factor} ⪯ C{factor * multiplier}"
        checks[f"2-hop survives ({label})"] = violation.valid_up_to >= 2
        checks[f"breaks below factor size ({label})"] = violation.valid_up_to < factor
        rows.append(
            SweepRow(
                label,
                {
                    "factor n": violation.factor_nodes,
                    "product n": violation.product_nodes,
                    "lifted valid up to k": violation.valid_up_to,
                },
            )
        )
    return ExperimentResult(
        experiment_id="khop",
        title=(
            "KHOP — lifted colorings stay 2-hop valid but fail as k-hop "
            "colorings for k > 2 (the GRAN boundary of Section 1.2)"
        ),
        columns=["factor n", "product n", "lifted valid up to k"],
        rows=rows,
        checks=checks,
    )


@experiment("impossibility", cost=1.0)
def impossibility() -> ExperimentResult:
    """Angluin-style election impossibility via view collapse."""
    cases = [
        ("cycle-8", with_uniform_input(cycle_graph(8))),
        ("complete-6", with_uniform_input(complete_graph(6))),
        ("hypercube-3", with_uniform_input(hypercube_graph(3))),
        ("torus-3x3", with_uniform_input(torus_graph(3, 3))),
        ("petersen", with_uniform_input(petersen_graph())),
        ("circulant-8(1,2)", with_uniform_input(circulant_graph(8, [1, 2]))),
        ("circulant-9(1,3)", with_uniform_input(circulant_graph(9, [1, 3]))),
        ("path-6", with_uniform_input(path_graph(6))),
        ("star-5", with_uniform_input(star_graph(5))),
    ]
    rows, checks = [], {}
    for name, graph in cases:
        profile = view_class_profile(graph)
        impossible = election_is_deterministically_impossible(graph)
        checks[f"{name} impossible"] = impossible
        rows.append(
            SweepRow(
                name,
                {
                    "n": profile.num_nodes,
                    "view classes": profile.num_classes,
                    "largest class": profile.class_sizes[0],
                },
            )
        )
    return ExperimentResult(
        experiment_id="impossibility",
        title=(
            "IMP — view-class collapse forbids deterministic anonymous "
            "leader election on symmetric families"
        ),
        columns=["n", "view classes", "largest class"],
        rows=rows,
        checks=checks,
    )


@experiment("election", cost=8.0)
def election_boundary() -> ExperimentResult:
    """Election succeeds exactly on prime colored instances; the
    Monte-Carlo variant trades correctness probability for feasibility."""
    problem = LeaderElectionProblem()

    def with_n(graph):
        n = graph.num_nodes
        return graph.with_layer(
            "input", {v: (graph.degree(v), n) for v in graph.nodes}
        )

    cases = [
        ("path-5", colored(with_n(path_graph(5)))),
        ("star-4", colored(with_n(star_graph(4)))),
        ("cycle-5", colored(with_n(cycle_graph(5)))),
    ]
    base = colored(with_n(cycle_graph(3)))
    from repro.graphs.lifts import cyclic_lift

    for fiber in (2, 4):
        lift, _ = cyclic_lift(base, fiber)
        lift = lift.with_layer(
            "input", {v: (lift.degree(v), lift.num_nodes) for v in lift.nodes}
        )
        cases.append((f"C{3 * fiber} over C3", lift))

    rows, checks = [], {}
    for name, instance in cases:
        execution = execute(
            MinimalViewElection(), instance, max_rounds=200, require_decided=True
        )
        leaders = sum(1 for out in execution.outputs.values() if out == LEADER)
        valid = problem.is_valid_output(
            instance.with_only_layers(["input"]), execution.outputs
        )
        classes = color_refinement(instance).num_classes
        prime = classes == instance.num_nodes
        checks[f"valid iff prime ({name})"] = valid == prime
        rows.append(
            SweepRow(name, {"n": instance.num_nodes, "prime": prime, "leaders": leaders})
        )

    # Monte-Carlo failure rates on C8.
    graph = with_n(cycle_graph(8))
    trials = 40
    for id_bits in (1, 4, 16):
        failures = sum(
            not problem.is_valid_output(
                graph,
                execute(
                    MonteCarloElection(id_bits=id_bits),
                    graph,
                    seed=s,
                    require_decided=True,
                ).outputs,
            )
            for s in range(trials)
        )
        bound = failure_probability_bound(graph.num_nodes, id_bits)
        checks[f"mc rate within bound (b={id_bits})"] = (
            failures / trials <= bound + 0.2
        )
        rows.append(
            SweepRow(
                f"monte-carlo b={id_bits}",
                {"n": 8, "prime": "-", "leaders": f"fail {failures}/{trials}"},
            )
        )
    return ExperimentResult(
        experiment_id="election",
        title=(
            "ELECT — deterministic election works iff the colored instance "
            "is prime; Monte-Carlo failure decays with ID length"
        ),
        columns=["n", "prime", "leaders"],
        rows=rows,
        checks=checks,
    )


@experiment("fibrations", cost=1.5)
def fibrations() -> ExperimentResult:
    """Section 4: directed representations and the fibration bridge."""
    rows, checks = [], {}
    for fiber in (2, 4):
        base, lift, projection = lifted_colored_c3(fiber)
        rep_total = directed_representation(lift)
        rep_base = directed_representation(base)
        props = (
            is_symmetric_representation(rep_total),
            is_deterministic_coloring(rep_total),
            coloring_respects_symmetry(rep_total),
        )
        checks[f"representation properties x{fiber}"] = all(props)
        ok = is_fibration(rep_total, rep_base, projection)
        fm = fibration_to_factorizing_map(lift, base, projection)
        checks[f"fibration <-> factorizing map x{fiber}"] = (
            ok and fm.multiplicity == fiber
        )
        rows.append(
            SweepRow(
                f"C3-lift x{fiber}",
                {
                    "directed edges": len(rep_total.edges),
                    "symmetric": props[0],
                    "deterministic": props[1],
                    "is fibration": ok,
                },
            )
        )
    return ExperimentResult(
        experiment_id="fibrations",
        title=(
            "SEC4 — directed representations are symmetric + "
            "deterministically colored; fibrations ↔ factorizing maps"
        ),
        columns=["directed edges", "symmetric", "deterministic", "is fibration"],
        rows=rows,
        checks=checks,
    )


@dataclass(frozen=True)
class _LedgerState:
    ledger: tuple
    round_number: int


class _PortLedger(PortAwareAlgorithm):
    bits_per_round = 0
    name = "port-ledger"

    def init_state(self, input_label, degree: int):
        return _LedgerState(ledger=(), round_number=0)

    def messages(self, state, degree: int):
        return [(state.round_number, port) for port in range(degree)]

    def transition(self, state, received, bits: str):
        return _LedgerState(
            ledger=state.ledger + (tuple(enumerate(received)),),
            round_number=state.round_number + 1,
        )

    def output(self, state):
        return state.ledger if state.round_number >= 3 else None


@experiment("ports", cost=1.0)
def port_emulation() -> ExperimentResult:
    """Section 1.3's remark: port numbers emulated via colors."""
    rows, checks = [], {}
    cases = [
        ("path-5", colored(with_uniform_input(path_graph(5)))),
        ("cycle-6", colored(with_uniform_input(cycle_graph(6)))),
        ("star-5", colored(with_uniform_input(star_graph(5)))),
    ]
    for name, graph in cases:
        inner = _PortLedger()

        def key(u, graph=graph):
            c = graph.label_of(u, "color")
            return (type(c).__name__, repr(c))

        native = execute(
            inner,
            graph.with_ports(
                {v: sorted(graph.neighbors(v), key=key) for v in graph.nodes}
            ),
            max_rounds=10,
        )
        emulated = execute(PortEmulation(inner), graph, max_rounds=10)
        checks[f"outputs equal ({name})"] = native.outputs == emulated.outputs
        checks[f"one-round overhead ({name})"] = emulated.rounds == native.rounds + 1
        rows.append(
            SweepRow(
                name,
                {
                    "native rounds": native.rounds,
                    "emulated rounds": emulated.rounds,
                    "outputs equal": native.outputs == emulated.outputs,
                },
            )
        )
    return ExperimentResult(
        experiment_id="ports",
        title=(
            "PORTS — the port-numbering model emulated over broadcast + "
            "2-hop colors (identical outputs, one hello round)"
        ),
        columns=["native rounds", "emulated rounds", "outputs equal"],
        rows=rows,
        checks=checks,
    )
