"""``repro.experiments.fabric`` — sharded, resumable experiment fabric.

The PR-2 runner fans a task list over one process pool and forgets
everything when it exits.  The fabric scales that same task model
across *runs*, *shards* and *machines* by making every task a pure,
content-addressed unit of work:

* **Task keys.**  Every task is keyed by
  ``sha256(code_fingerprint, canonical spec, seed)`` —
  :func:`~repro.experiments.fingerprint.code_fingerprint` digests the
  ``src/repro`` source tree, the spec is a canonical JSON projection of
  *what* to run, and the seed follows the runner's
  :func:`~repro.experiments.runner.derive_seed` discipline.  Same code
  + same spec + same seed ⇒ same key ⇒ same result, so a stored record
  can stand in for a fresh run, byte for byte.
* **Append-only store.**  Completed tasks stream to a JSONL
  :class:`~repro.experiments.store.ResultStore` (one fsync'd line per
  task, no footer), so a killed run loses at most the in-flight task.
* **Resume.**  :func:`run_tasks` scans the store first and skips every
  task whose key already has a record — ``fabric run`` is idempotent
  and resumable across processes, machines and CI runs.  A source
  change rotates the fingerprint, which invalidates every key: a stale
  store degrades to a cache miss, never a wrong answer.
* **Sharding.**  ``--shard i/n`` statically partitions the task set by
  a stable hash of the task id (*not* the key, so shard assignment
  survives code changes and cached shards stay warm).  Shards are
  disjoint and cover the set exactly.
* **Work stealing.**  Within a shard, tasks are submitted
  longest-first (the runner's cost weights) to a shared executor
  queue, one task per future; idle workers pull the next task the
  moment they free up, and every completion is persisted before the
  run advances.
* **Merge.**  :func:`merge_stores` folds any collection of stores into
  one canonical artifact — a pure function of the *current-fingerprint*
  records, so a sharded, resumed, parallel run merges byte-identically
  to a fresh ``--jobs 1`` serial run.  That identity is the fabric's
  correctness gate (extended from PR 2; enforced by CI's
  ``fabric-resume`` job).

Grid sweeps (size × family × fault-rate × seed) are declared once as
:class:`GridSweep` registry entries — see the ``resilience`` and
``costs`` experiment modules — and expanded into atomic tasks by
:func:`grid_tasks`.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.analysis.sweeps import FamilySpec, spec_from_dict, spec_to_dict
from repro.exceptions import ReproError
from repro.experiments.base import all_experiment_ids, get_spec
from repro.experiments.fingerprint import code_fingerprint
from repro.experiments.runner import (
    RESULTS_SCHEMA,
    _jsonify,
    derive_seed,
    execute_tasks,
    experiment_entry,
)
from repro.experiments.store import ResultStore, scan_store

__all__ = [
    "FabricReport",
    "FabricTask",
    "GridSweep",
    "all_grid_names",
    "dump_merged",
    "experiment_tasks",
    "get_grid",
    "get_kernel",
    "grid_tasks",
    "merge_stores",
    "parse_shard",
    "register_grid",
    "register_kernel",
    "run_tasks",
    "shard_tasks",
    "task_key",
]


# ---------------------------------------------------------------------------
# Task model.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FabricTask:
    """One atomic, content-addressed unit of work.

    ``spec`` is the canonical JSON-able description of *what* to run
    (kind-specific); ``seed`` is the task's derived 63-bit seed;
    ``cost`` is the relative wall-time weight driving longest-first
    dispatch (same scale as the experiment registry's costs).
    """

    task_id: str
    kind: str  # "experiment" | "grid"
    spec: dict[str, Any]
    seed: int
    cost: float = 1.0


def canonical_spec(spec: dict[str, Any]) -> str:
    """The canonical one-line JSON form a task key is computed over."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def task_key(fingerprint: str, spec: dict[str, Any], seed: int) -> str:
    """``sha256(code_fingerprint, spec, seed)`` as hex — the store key."""
    material = f"{fingerprint}\x1f{canonical_spec(spec)}\x1f{seed}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def experiment_tasks(
    experiment_ids: "Iterable[str] | None" = None, *, base_seed: int = 0
) -> list[FabricTask]:
    """One task per registered experiment, with the runner's seeds.

    The spec and seed match ``run_experiments`` exactly, so a fabric
    record for ``figure1`` is the same canonical entry a ``--jobs 1``
    registry run would report for it.
    """
    ids = list(experiment_ids) if experiment_ids is not None else all_experiment_ids()
    tasks = []
    for eid in ids:
        spec = get_spec(eid)  # validates; raises on unknown ids
        tasks.append(
            FabricTask(
                task_id=f"experiment:{eid}",
                kind="experiment",
                spec={"kind": "experiment", "experiment_id": eid, "base_seed": base_seed},
                seed=derive_seed(eid, base_seed=base_seed),
                cost=spec.cost,
            )
        )
    return tasks


# ---------------------------------------------------------------------------
# Grid sweeps: families × axis values × seeds, declared once, expanded
# into atomic tasks.  Kernels are referenced by registry *name* so a
# task spec stays canonical JSON and a worker process can resolve the
# callable after its own import of ``repro.experiments``.
# ---------------------------------------------------------------------------

# kernel(graph, axis_value, seed) -> JSON-able measurement
GridKernel = Callable[[Any, Any, int], Any]

_KERNELS: dict[str, GridKernel] = {}
_GRIDS: dict[str, "GridSweep"] = {}


@dataclass(frozen=True)
class GridSweep:
    """A declared sweep grid: ``families × values × seeds``.

    ``kernel`` names a registered grid kernel; ``axis`` names the
    swept parameter (``values`` may be ``(None,)`` for grids whose only
    axes are family and seed); ``cost`` is the per-point dispatch
    weight.
    """

    name: str
    kernel: str
    families: tuple[FamilySpec, ...]
    axis: str
    values: tuple[Any, ...]
    seeds: tuple[int, ...]
    cost: float = 1.0


def register_kernel(name: str) -> Callable[[GridKernel], GridKernel]:
    """Decorator registering a grid kernel under a stable name."""

    def register(fn: GridKernel) -> GridKernel:
        if name in _KERNELS:
            raise ReproError(f"duplicate grid kernel {name!r}")
        _KERNELS[name] = fn
        return fn

    return register


def get_kernel(name: str) -> GridKernel:
    try:
        return _KERNELS[name]
    except KeyError:
        raise ReproError(
            f"unknown grid kernel {name!r}; known: {sorted(_KERNELS)!r}"
        ) from None


def register_grid(grid: GridSweep) -> GridSweep:
    if grid.name in _GRIDS:
        raise ReproError(f"duplicate grid {grid.name!r}")
    _GRIDS[grid.name] = grid
    return grid


def get_grid(name: str) -> GridSweep:
    try:
        return _GRIDS[name]
    except KeyError:
        raise ReproError(
            f"unknown grid {name!r}; known: {all_grid_names()!r}"
        ) from None


def all_grid_names() -> list[str]:
    return sorted(_GRIDS)


def grid_tasks(grid: "GridSweep | str", *, base_seed: int = 0) -> list[FabricTask]:
    """Expand a grid into its atomic ``family × value × seed`` tasks.

    Each point's seed is ``derive_seed`` over the point's full identity
    (grid, axis value, point seed, family, size, base seed) — a pure
    function of *what* the point is, never of sharding or schedule.
    """
    sweep = get_grid(grid) if isinstance(grid, str) else grid
    tasks = []
    for family in sweep.families:
        for value in sweep.values:
            for point_seed in sweep.seeds:
                identity = f"{sweep.name}:{sweep.axis}={value}:s{point_seed}"
                tasks.append(
                    FabricTask(
                        task_id=f"grid:{identity}:{family.name}",
                        kind="grid",
                        spec={
                            "kind": "grid",
                            "grid": sweep.name,
                            "kernel": sweep.kernel,
                            "family": spec_to_dict(family),
                            "axis": sweep.axis,
                            "value": value,
                            "point_seed": point_seed,
                            "base_seed": base_seed,
                        },
                        seed=derive_seed(identity, family.name, family.size, base_seed),
                        # Larger instances dominate a point's wall time.
                        cost=sweep.cost * max(1, family.size),
                    )
                )
    return tasks


# ---------------------------------------------------------------------------
# Sharding.
# ---------------------------------------------------------------------------


def parse_shard(text: str) -> tuple[int, int]:
    """Parse ``"i/n"`` (1-based) into ``(index, count)``, validated."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ReproError(f"--shard wants i/n (e.g. 2/4), got {text!r}") from None
    if count < 1 or not 1 <= index <= count:
        raise ReproError(f"--shard index out of range: {text!r}")
    return index, count


def shard_tasks(
    tasks: Sequence[FabricTask], index: int, count: int
) -> list[FabricTask]:
    """The ``index``-th of ``count`` static shards (1-based).

    Assignment hashes the *task id* (stable across code changes, unlike
    the key) so the shards of a grid partition it exactly: disjoint,
    and jointly covering.
    """
    if count == 1:
        return list(tasks)
    selected = []
    for task in tasks:
        digest = hashlib.sha256(task.task_id.encode("utf-8")).digest()
        if int.from_bytes(digest[:8], "big") % count == index - 1:
            selected.append(task)
    return selected


# ---------------------------------------------------------------------------
# Execution: resume-scan, longest-first work-stealing dispatch, streamed
# persistence.
# ---------------------------------------------------------------------------


def _run_fabric_task(
    payload: tuple[str, str, str, dict[str, Any], int, str],
) -> tuple[str, dict[str, Any]]:
    """Worker entry point: run one task, return its store record.

    Top-level (picklable by qualified name); imports
    ``repro.experiments`` so both the experiment registry and the grid
    kernels are populated in a spawned worker.
    """
    key, task_id, kind, spec, seed, fingerprint = payload
    import repro.experiments  # noqa: F401  (registration on spawn)
    from repro.artifacts.store import record_artifact_keys

    # Record which canonical artifacts (refinements, views, quotients)
    # the task fetched: sweep records and served artifact queries share
    # one content-address space, so a stored record names exactly the
    # store entries that would warm-start it.  Keys are pure functions of
    # (code fingerprint, structure), so the record stays byte-identical
    # across serial/parallel/resumed runs.
    with record_artifact_keys() as artifact_keys:
        if kind == "experiment":
            result = get_spec(spec["experiment_id"]).run(seed=seed)
            entry: Any = experiment_entry(result, seed)
        elif kind == "grid":
            graph = spec_from_dict(spec["family"]).build()
            kernel = get_kernel(spec["kernel"])
            entry = _jsonify(kernel(graph, spec["value"], seed))
        else:
            raise ReproError(f"unknown fabric task kind {kind!r}")
    record = {
        "key": key,
        "task_id": task_id,
        "kind": kind,
        "fingerprint": fingerprint,
        "seed": seed,
        "spec": spec,
        "result": entry,
        "artifacts": sorted(artifact_keys),
    }
    return key, record


@dataclass
class FabricReport:
    """What one ``fabric run`` invocation did."""

    total: int
    skipped: int
    ran: int
    failed: int
    fingerprint: str
    store_path: Path
    fallback_reason: "str | None" = None
    wall_s: float = 0.0

    @property
    def mode(self) -> str:
        return "serial" if self.fallback_reason else "fabric"

    def summary(self) -> str:
        """The stable one-line summary CI greps (``ran=0`` ⇔ full resume)."""
        return (
            f"fabric-summary fingerprint={self.fingerprint[:12]} "
            f"total={self.total} stored={self.skipped} ran={self.ran} "
            f"failed={self.failed} store={self.store_path}"
        )


def _keyed_tasks(
    tasks: Sequence[FabricTask], fingerprint: str
) -> list[tuple[str, FabricTask]]:
    """Pair tasks with their keys; reject task-id collisions and dupes."""
    seen: dict[str, str] = {}
    keyed = []
    for task in tasks:
        key = task_key(fingerprint, task.spec, task.seed)
        if task.task_id in seen:
            if seen[task.task_id] != key:
                raise ReproError(
                    f"task id {task.task_id!r} maps to two different specs"
                )
            continue  # exact duplicate: run once
        seen[task.task_id] = key
        keyed.append((key, task))
    return keyed


def run_tasks(
    tasks: Sequence[FabricTask],
    store_path: "str | Path",
    *,
    jobs: int = 1,
    fingerprint: "str | None" = None,
    executor_factory: "Callable[[int], Any] | None" = None,
) -> FabricReport:
    """Run every task not already in the store; stream records to it.

    Idempotent: a second invocation over the same tasks, store and
    source tree runs nothing.  Pending tasks are dispatched
    longest-first (cost-weighted) one-per-future over a shared executor
    queue — work stealing — and each completed record is fsync'd to the
    store before the run proceeds, so a kill loses at most the tasks
    still in flight.
    """
    code_fp = fingerprint if fingerprint is not None else code_fingerprint()
    start = time.perf_counter()  # repro-lint: disable=DET001 -- wall-time metric only
    with ResultStore.open(store_path) as store:
        keyed = _keyed_tasks(tasks, code_fp)
        pending = [(key, task) for key, task in keyed if key not in store]
        dispatch = sorted(pending, key=lambda item: (-item[1].cost, item[1].task_id))
        payloads = [
            (key, task.task_id, task.kind, task.spec, task.seed, code_fp)
            for key, task in dispatch
        ]

        def persist(key: str, record: dict[str, Any], mode: str) -> None:
            store.append(record)

        _outcomes, _modes, fallback_reason = execute_tasks(
            payloads,
            _run_fabric_task,
            jobs,
            executor_factory=executor_factory,
            ordered=False,
            on_result=persist,
        )
        failed = sum(
            1
            for key, task in keyed
            if task.kind == "experiment"
            and not store.records[key]["result"]["passed"]
        )
    return FabricReport(
        total=len(keyed),
        skipped=len(keyed) - len(pending),
        ran=len(pending),
        failed=failed,
        fingerprint=code_fp,
        store_path=Path(store_path),
        fallback_reason=fallback_reason,
        wall_s=time.perf_counter() - start,  # repro-lint: disable=DET001 -- wall-time metric only
    )


# ---------------------------------------------------------------------------
# Merge: fold stores into the canonical artifact.
# ---------------------------------------------------------------------------


def merge_stores(
    paths: Sequence["str | Path"],
    *,
    fingerprint: "str | None" = None,
) -> tuple[dict[str, Any], dict[str, int]]:
    """Fold JSONL stores into one canonical payload.

    Returns ``(payload, stats)``.  Only records carrying the requested
    (default: current) code fingerprint participate — stale records
    from before a source change are counted in ``stats["ignored"]``
    but never merged, so the payload is a pure function of the
    current-fingerprint record set.  Two stores disagreeing on the
    same key is corruption and raises.

    The payload is schema-compatible with ``RESULTS_experiments.json``
    (``schema``/``suite``/``results`` with canonical per-experiment
    entries) but contains *only* deterministic fields: merging the
    shards of a sharded, resumed, parallel run is byte-identical to
    merging a fresh ``--jobs 1`` serial run over the same grid.
    """
    code_fp = fingerprint if fingerprint is not None else code_fingerprint()
    records: dict[str, dict[str, Any]] = {}
    ignored = 0
    for path in paths:
        for key, record in scan_store(path).items():
            if record.get("fingerprint") != code_fp:
                ignored += 1
                continue
            if key in records and records[key] != record:
                raise ReproError(
                    f"stores disagree on task key {key[:12]}… "
                    f"({records[key].get('task_id')!r})"
                )
            records[key] = record
    experiments = sorted(
        (dict(record["result"]) for record in records.values()
         if record["kind"] == "experiment"),
        key=lambda entry: entry["experiment_id"],
    )
    grids: dict[str, list[dict[str, Any]]] = {}
    for record in records.values():
        if record["kind"] != "grid":
            continue
        spec = record["spec"]
        grids.setdefault(spec["grid"], []).append(
            {
                "task_id": record["task_id"],
                "family": spec["family"]["name"],
                "size": spec["family"]["size"],
                "axis": spec["axis"],
                "value": spec["value"],
                "point_seed": spec["point_seed"],
                "seed": record["seed"],
                "result": record["result"],
            }
        )
    for rows in grids.values():
        rows.sort(key=lambda row: row["task_id"])
    payload = {
        "schema": RESULTS_SCHEMA,
        "suite": "experiments",
        "engine": {"mode": "fabric", "fingerprint": code_fp},
        "results": experiments,
        "grids": {name: grids[name] for name in sorted(grids)},
    }
    stats = {"records": len(records), "ignored": ignored, "stores": len(paths)}
    return payload, stats


def dump_merged(payload: dict[str, Any]) -> str:
    """The canonical (byte-stable) text form of a merged payload."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
