"""Experiments F1-F3: the paper's three figures, regenerated."""

from __future__ import annotations

from repro.analysis.sweeps import SweepRow
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.core.a_star import AStarSolver
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments._shared import lifted_colored_c3
from repro.factor.factorizing_map import FactorizingMap
from repro.factor.prime import is_prime
from repro.graphs.builders import cycle_graph
from repro.problems.mis import MISProblem
from repro.views.local_views import view, view_partition


@experiment("figure1", cost=0.5)
def figure1() -> ExperimentResult:
    """Figure 1: the depth-3 local view of u0 in the 2-hop colored C6."""
    labels = {0: "c0", 1: "c1", 2: "c2", 3: "c0", 4: "c1", 5: "c2"}
    g = cycle_graph(6).with_layer("color", labels)
    tree = view(g, 0, 3)
    partition = view_partition(g, 6)
    checks = {
        "depth is 3": tree.depth == 3,
        "size is 7 (1 + 2 + 4)": tree.size == 7,
        "root mark c0": tree.mark == ("c0",),
        "children are {c1, c2}": sorted(c.mark for c in tree.children)
        == [("c1",), ("c2",)],
        "same-colored nodes share views": sorted(map(sorted, partition))
        == [[0, 3], [1, 4], [2, 5]],
    }
    rows = [
        SweepRow(
            f"level {level}",
            {"marks": [m for (m,) in tree.level_marks(level)]},
        )
        for level in (1, 2, 3)
    ]
    return ExperimentResult(
        experiment_id="figure1",
        title="Figure 1 — depth-3 local view of u0 in the 2-hop colored C6",
        columns=["marks"],
        rows=rows,
        checks=checks,
        preamble=tree.render(),
    )


@experiment("figure2", cost=0.5)
def figure2() -> ExperimentResult:
    """Figure 2: the labeled factor tower C3 ⪯_g C6 ⪯_f C12."""

    def labeled(n: int):
        return cycle_graph(n).with_layer("color", {v: f"c{v % 3}" for v in range(n)})

    c12, c6, c3 = labeled(12), labeled(6), labeled(3)
    f = FactorizingMap(c12, c6, {v: v % 6 for v in c12.nodes})
    g = FactorizingMap(c6, c3, {v: v % 3 for v in c6.nodes})
    composed = f.compose(g)
    checks = {
        "f multiplicity 2": f.multiplicity == 2,
        "g multiplicity 2": g.multiplicity == 2,
        "g∘f multiplicity 4": composed.multiplicity == 4,
        "C3 prime": is_prime(c3),
        "C6 not prime": not is_prime(c6),
        "C12 not prime": not is_prime(c12),
    }
    rows = [
        SweepRow("C12 -> C6 (f)", {"|V| product": 12, "|V| factor": 6, "m": 2}),
        SweepRow("C6 -> C3 (g)", {"|V| product": 6, "|V| factor": 3, "m": 2}),
        SweepRow("C12 -> C3 (g∘f)", {"|V| product": 12, "|V| factor": 3, "m": 4}),
    ]
    return ExperimentResult(
        experiment_id="figure2",
        title=(
            "Figure 2 — the labeled factor tower C3 ⪯ C6 ⪯ C12 "
            "(C3 prime; C6, C12 not)"
        ),
        columns=["|V| product", "|V| factor", "m"],
        rows=rows,
        checks=checks,
    )


@experiment("figure3", cost=4.0)
def figure3() -> ExperimentResult:
    """Figure 3: the faithful A_* on a lifted 2-hop colored cycle."""
    _base, lift, _proj = lifted_colored_c3(2)
    problem = MISProblem()
    solver = AStarSolver(problem, AnonymousMISAlgorithm(), max_candidate_nodes=3)
    outputs, diagnostics = solver.solve(lift, max_phases=16)
    by_phase: dict = {}
    for phase, size, encoding in diagnostics.phase_selections:
        by_phase.setdefault(phase, set()).add((size, encoding))
    checks = {
        "outputs valid": problem.is_valid_output(
            lift.with_only_layers(["input"]), outputs
        ),
        "per-phase agreement (Lemma 1)": all(
            len(s) == 1 for s in by_phase.values()
        ),
        "final selection is the quotient (Lemma 7)": bool(by_phase)
        and next(iter(by_phase[max(by_phase)]))[0] == 3,
    }
    rows = [
        SweepRow(
            f"phase {phase}",
            {
                "selected |V*|": next(iter(selections))[0],
                "distinct selections": len(selections),
            },
        )
        for phase, selections in sorted(by_phase.items())
    ]
    rows.append(
        SweepRow(
            "totals",
            {
                "selected |V*|": f"phases={diagnostics.phases}",
                "distinct selections": f"candidates={diagnostics.candidates_enumerated}",
            },
        )
    )
    return ExperimentResult(
        experiment_id="figure3",
        title=(
            "Figure 3 — faithful A_* (Update-Graph/Output/Bits) on the "
            "colored C6, quotient size 3"
        ),
        columns=["selected |V*|", "distinct selections"],
        rows=rows,
        checks=checks,
    )
