"""Executable experiments — every paper artifact as a library call.

Each experiment regenerates one artifact of the paper (a figure, a
theorem, a lemma, or an in-text claim) and returns an
:class:`~repro.experiments.base.ExperimentResult`: a table plus
pass/fail checks.  The benchmark suite wraps these functions with
timing; the CLI runs them standalone (optionally fanned out over a
process pool by :mod:`repro.experiments.runner` — output is
bit-identical for every job count):

    python -m repro.experiments --list
    python -m repro.experiments figure2 norris
    python -m repro.experiments --all --jobs 4 --json RESULTS_experiments.json

Every experiment function is deterministic (seeds are fixed inside).
"""

from repro.experiments.base import (
    ExperimentResult,
    ExperimentSpec,
    all_experiment_ids,
    all_families,
    all_specs,
    get_experiment,
    get_spec,
    run_all,
)
from repro.experiments import (  # noqa: F401  (registration)
    boundaries,
    costs,
    dynamic,
    figures,
    lemmas,
    resilience,
    theorems,
)
from repro.experiments.fabric import (
    FabricReport,
    FabricTask,
    GridSweep,
    experiment_tasks,
    grid_tasks,
    merge_stores,
    run_tasks,
    shard_tasks,
    task_key,
)
from repro.experiments.fingerprint import code_fingerprint
from repro.experiments.runner import (
    RunReport,
    derive_seed,
    map_families,
    run_experiments,
    write_results_json,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "FabricReport",
    "FabricTask",
    "GridSweep",
    "RunReport",
    "all_experiment_ids",
    "all_families",
    "all_specs",
    "code_fingerprint",
    "derive_seed",
    "experiment_tasks",
    "get_experiment",
    "get_spec",
    "grid_tasks",
    "map_families",
    "merge_stores",
    "run_all",
    "run_experiments",
    "run_tasks",
    "shard_tasks",
    "task_key",
    "write_results_json",
]
