"""Executable experiments — every paper artifact as a library call.

Each experiment regenerates one artifact of the paper (a figure, a
theorem, a lemma, or an in-text claim) and returns an
:class:`~repro.experiments.base.ExperimentResult`: a table plus
pass/fail checks.  The benchmark suite wraps these functions with
timing; the CLI runs them standalone (optionally fanned out over a
process pool by :mod:`repro.experiments.runner` — output is
bit-identical for every job count):

    python -m repro.experiments --list
    python -m repro.experiments figure2 norris
    python -m repro.experiments --all --jobs 4 --json RESULTS_experiments.json

Every experiment function is deterministic (seeds are fixed inside).
"""

from repro.experiments.base import (
    ExperimentResult,
    ExperimentSpec,
    all_experiment_ids,
    all_families,
    all_specs,
    get_experiment,
    get_spec,
    run_all,
)
from repro.experiments import (  # noqa: F401  (registration)
    boundaries,
    costs,
    figures,
    lemmas,
    resilience,
    theorems,
)
from repro.experiments.runner import (
    RunReport,
    derive_seed,
    map_families,
    run_experiments,
    write_results_json,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "RunReport",
    "all_experiment_ids",
    "all_families",
    "all_specs",
    "derive_seed",
    "get_experiment",
    "get_spec",
    "map_families",
    "run_all",
    "run_experiments",
    "write_results_json",
]
