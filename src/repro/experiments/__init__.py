"""Executable experiments — every paper artifact as a library call.

Each experiment regenerates one artifact of the paper (a figure, a
theorem, a lemma, or an in-text claim) and returns an
:class:`~repro.experiments.base.ExperimentResult`: a table plus
pass/fail checks.  The benchmark suite wraps these functions with
timing; the CLI runs them standalone:

    python -m repro.experiments --list
    python -m repro.experiments figure2 norris
    python -m repro.experiments --all

Every experiment function is deterministic (seeds are fixed inside).
"""

from repro.experiments.base import (
    ExperimentResult,
    all_experiment_ids,
    get_experiment,
    run_all,
)
from repro.experiments import figures, theorems, lemmas, boundaries, costs  # noqa: F401  (registration)

__all__ = [
    "ExperimentResult",
    "all_experiment_ids",
    "get_experiment",
    "run_all",
]
