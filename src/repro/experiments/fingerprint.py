"""Code fingerprinting for the experiment fabric.

A fabric task's result is a pure function of ``(code, spec, seed)``:
the same source tree, task description and derived seed always produce
the same record, byte for byte (the serial-vs-parallel identity
contract, extended with *code identity*).  :func:`code_fingerprint`
digests the ``repro`` source tree — every ``*.py`` file under the
package root, in sorted relative-path order, each contributing its
path and raw bytes — with SHA-256, the same hash discipline the
runner's seed derivation and the fault subsystem use.

Any source change (even a comment) changes the fingerprint, which
changes every task key, which invalidates every stored result.  That
is deliberate: the fabric never has to reason about *which* change
affected *which* task, and a stale store degrades to a cache miss,
never to a wrong answer.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

__all__ = ["clear_fingerprint_cache", "code_fingerprint", "short_fingerprint"]

# Fingerprints are pure functions of the tree contents; memoized per
# resolved root because CLI runs hash the tree several times (task
# building, store scanning, merging).
_CACHE: dict[str, str] = {}


def _default_root() -> Path:
    """The installed ``repro`` package directory (the ``src/repro`` tree)."""
    import repro

    return Path(repro.__file__).resolve().parent


def code_fingerprint(root: "str | Path | None" = None) -> str:
    """SHA-256 hex digest of every ``*.py`` file under ``root``.

    ``root`` defaults to the ``repro`` package directory.  Files are
    visited in sorted POSIX relative-path order; each contributes
    ``path NUL contents NUL`` so file boundaries cannot alias (moving
    bytes between adjacent files changes the digest).
    """
    base = Path(root).resolve() if root is not None else _default_root()
    cache_key = str(base)
    cached = _CACHE.get(cache_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py"), key=lambda p: p.relative_to(base).as_posix()):
        digest.update(path.relative_to(base).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()
    _CACHE[cache_key] = fingerprint
    return fingerprint


def short_fingerprint(fingerprint: "str | None" = None) -> str:
    """The 12-character prefix used in log lines and artifact names."""
    return (fingerprint or code_fingerprint())[:12]


def clear_fingerprint_cache() -> None:
    """Drop the memo (tests rewrite trees under a reused tmp path)."""
    _CACHE.clear()
