"""CLI experiment runner: ``python -m repro.experiments``.

Usage::

    python -m repro.experiments --list          # available experiment ids
    python -m repro.experiments figure2 norris  # run selected experiments
    python -m repro.experiments --all           # run everything
    python -m repro.experiments --all --jobs 4  # ... on 4 worker processes
    python -m repro.experiments --filter lemma  # ids containing "lemma"
    python -m repro.experiments --all --json RESULTS_experiments.json

Row and check output is bit-identical for every ``--jobs`` value (see
``repro.experiments.runner``); ``--json`` additionally persists the run
as a machine-readable artifact.  Exits nonzero if any experiment's
checks fail.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.base import all_experiment_ids, get_spec
from repro.experiments.runner import run_experiments, write_results_json


def _select_ids(args: argparse.Namespace) -> list[str] | None:
    """The experiment ids a CLI invocation asks for, or None for 'help'."""
    if args.experiments:
        ids = list(args.experiments)
    elif args.all or args.filter:
        ids = all_experiment_ids()
    else:
        return None
    if args.filter:
        ids = [eid for eid in ids if args.filter in eid]
    return ids


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the paper's figures and validate its theorems/lemmas."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--filter",
        metavar="SUBSTR",
        help="restrict to experiment ids containing SUBSTR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    parser.add_argument(
        "--base-seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed mixed into every derived per-task seed (default 0)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the run as a machine-readable JSON artifact at PATH",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each experiment's table as DIR/<id>.csv",
    )
    args = parser.parse_args(argv)

    if args.list:
        ids = _select_ids(args) or all_experiment_ids()
        specs = [get_spec(eid) for eid in ids]
        id_width = max(len("id"), *(len(s.experiment_id) for s in specs))
        family_width = max(len("family"), *(len(s.family) for s in specs))
        print(f"{'id':<{id_width}}  {'family':<{family_width}}  {'cost':>6}")
        for spec in specs:
            print(
                f"{spec.experiment_id:<{id_width}}  "
                f"{spec.family:<{family_width}}  {spec.cost:>6.1f}"
            )
        print(f"{len(specs)} experiments")
        return 0

    ids = _select_ids(args)
    if ids is None:
        parser.print_help()
        return 2
    if not ids:
        print(f"no experiment ids match --filter {args.filter!r}", file=sys.stderr)
        return 2

    report = run_experiments(ids, jobs=args.jobs, base_seed=args.base_seed)
    if report.fallback_reason:
        print(
            f"[runner] process pool unavailable ({report.fallback_reason}); "
            "ran serially",
            file=sys.stderr,
        )
    results = report.results()

    if args.csv:
        import pathlib

        from repro.analysis.sweeps import table_to_csv

        directory = pathlib.Path(args.csv)
        directory.mkdir(parents=True, exist_ok=True)
        for result in results:
            path = directory / f"{result.experiment_id}.csv"
            path.write_text(table_to_csv(result.columns, result.rows))
        print(f"wrote {len(results)} CSV tables to {directory}/")

    if args.json:
        target = write_results_json(args.json, report)
        print(f"wrote JSON artifact to {target}")

    any_failed = False
    for result in results:
        print(result.render())
        print()
        if not result.passed:
            any_failed = True
    if any_failed:
        print("SOME CHECKS FAILED", file=sys.stderr)
        return 1
    print(f"all {len(results)} experiments passed their checks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
