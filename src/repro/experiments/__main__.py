"""CLI experiment runner: ``python -m repro.experiments``.

Usage::

    python -m repro.experiments --list          # available experiment ids
    python -m repro.experiments figure2 norris  # run selected experiments
    python -m repro.experiments --all           # run everything

Exits nonzero if any experiment's checks fail.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.base import all_experiment_ids, get_experiment, run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the paper's figures and validate its theorems/lemmas."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each experiment's table as DIR/<id>.csv",
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in all_experiment_ids():
            print(experiment_id)
        return 0

    if args.all:
        results = run_all()
    elif args.experiments:
        results = [get_experiment(eid)() for eid in args.experiments]
    else:
        parser.print_help()
        return 2

    if args.csv:
        import pathlib

        from repro.analysis.sweeps import table_to_csv

        directory = pathlib.Path(args.csv)
        directory.mkdir(parents=True, exist_ok=True)
        for result in results:
            path = directory / f"{result.experiment_id}.csv"
            path.write_text(table_to_csv(result.columns, result.rows))
        print(f"wrote {len(results)} CSV tables to {directory}/")

    any_failed = False
    for result in results:
        print(result.render())
        print()
        if not result.passed:
            any_failed = True
    if any_failed:
        print("SOME CHECKS FAILED", file=sys.stderr)
        return 1
    print(f"all {len(results)} experiments passed their checks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
