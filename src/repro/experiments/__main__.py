"""CLI experiment runner: ``python -m repro.experiments``.

Usage::

    python -m repro.experiments --list          # available experiment ids
    python -m repro.experiments figure2 norris  # run selected experiments
    python -m repro.experiments --all           # run everything
    python -m repro.experiments --all --jobs 4  # ... on 4 worker processes
    python -m repro.experiments --filter lemma  # ids containing "lemma"
    python -m repro.experiments --all --json RESULTS_experiments.json

Row and check output is bit-identical for every ``--jobs`` value (see
``repro.experiments.runner``); ``--json`` additionally persists the run
as a machine-readable artifact.  Exits nonzero if any experiment's
checks fail; with ``--strict-jobs``, also (status 3) if ``--jobs > 1``
silently degraded to a serial run.

The sharded, resumable fabric lives under the ``fabric`` subcommand
(see docs/EXPERIMENTS.md, "The experiment fabric")::

    python -m repro.experiments fabric run --all --grids --jobs 4
    python -m repro.experiments fabric run --grid resilience-drop-grid \\
        --shard 2/4 --store FABRIC_shard2.jsonl
    python -m repro.experiments fabric status --all --grids
    python -m repro.experiments fabric merge FABRIC_*.jsonl \\
        --out RESULTS_experiments.json
    python -m repro.experiments fabric fingerprint
    python -m repro.experiments fabric grids
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.base import all_experiment_ids, get_spec
from repro.experiments.runner import run_experiments, write_results_json

DEFAULT_STORE = "FABRIC_results.jsonl"
EXIT_DEGRADED = 3  # --strict-jobs: parallel run silently fell back to serial


def _fabric_selection(args: argparse.Namespace) -> "list | None":
    """Expand a fabric CLI selection into tasks (None = nothing asked)."""
    from repro.experiments import fabric

    asked = bool(
        args.experiments or args.all or args.filter or args.grid or args.grids
    )
    if not asked:
        return None
    ids: list[str] = []
    if args.experiments:
        ids = list(args.experiments)
    elif args.all or args.filter:
        ids = all_experiment_ids()
    if args.filter:
        ids = [eid for eid in ids if args.filter in eid]
    grid_names = list(args.grid or [])
    if args.grids:
        grid_names = fabric.all_grid_names()
    tasks = fabric.experiment_tasks(ids, base_seed=args.base_seed) if ids else []
    for name in grid_names:
        tasks.extend(fabric.grid_tasks(name, base_seed=args.base_seed))
    if args.shard:
        index, count = fabric.parse_shard(args.shard)
        tasks = fabric.shard_tasks(tasks, index, count)
    return tasks


def _add_fabric_selection_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "experiments", nargs="*", help="experiment ids to include (see --list)"
    )
    parser.add_argument(
        "--all", action="store_true", help="include every registered experiment"
    )
    parser.add_argument(
        "--filter", metavar="SUBSTR", help="restrict experiment ids to those containing SUBSTR"
    )
    parser.add_argument(
        "--grid",
        action="append",
        metavar="NAME",
        help="include a declared grid sweep (repeatable; see 'fabric grids')",
    )
    parser.add_argument(
        "--grids", action="store_true", help="include every declared grid sweep"
    )
    parser.add_argument(
        "--base-seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed mixed into every derived per-task seed (default 0)",
    )
    parser.add_argument(
        "--shard",
        metavar="i/n",
        help="run only the i-th of n static task shards (1-based)",
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        metavar="PATH",
        help=f"append-only JSONL result store (default {DEFAULT_STORE})",
    )


def fabric_main(argv: list[str]) -> int:
    """The ``fabric`` subcommand family (sharded, resumable runs)."""
    from repro.experiments import fabric
    from repro.experiments.fingerprint import code_fingerprint, short_fingerprint

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments fabric",
        description=(
            "Sharded, resumable experiment fabric: content-addressed "
            "tasks, an append-only JSONL store, and deterministic merges "
            "(see docs/EXPERIMENTS.md)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run every selected task not already in the store"
    )
    _add_fabric_selection_args(run_parser)
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    run_parser.add_argument(
        "--strict-jobs",
        action="store_true",
        help=f"exit {EXIT_DEGRADED} if --jobs > 1 degraded to a serial run",
    )

    status_parser = commands.add_parser(
        "status", help="report stored vs pending counts for a selection"
    )
    _add_fabric_selection_args(status_parser)

    merge_parser = commands.add_parser(
        "merge", help="fold JSONL stores into the canonical merged artifact"
    )
    merge_parser.add_argument("stores", nargs="+", metavar="STORE", help="JSONL stores")
    merge_parser.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="write the canonical merged JSON here (byte-stable)",
    )

    commands.add_parser("fingerprint", help="print the current code fingerprint")
    commands.add_parser("grids", help="list the declared grid sweeps")

    args = parser.parse_args(argv)

    if args.command == "fingerprint":
        print(code_fingerprint())
        return 0

    if args.command == "grids":
        for name in fabric.all_grid_names():
            grid = fabric.get_grid(name)
            points = len(grid.families) * len(grid.values) * len(grid.seeds)
            print(
                f"{name}  kernel={grid.kernel}  axis={grid.axis}  "
                f"points={points}"
            )
        print(f"{len(fabric.all_grid_names())} grids")
        return 0

    if args.command == "merge":
        payload, stats = fabric.merge_stores(args.stores)
        Path(args.out).write_text(fabric.dump_merged(payload))
        print(
            f"fabric: merged {stats['records']} records from "
            f"{stats['stores']} stores into {args.out} "
            f"(fingerprint {short_fingerprint()}, "
            f"{stats['ignored']} stale records ignored)"
        )
        return 0

    tasks = _fabric_selection(args)
    if tasks is None:
        print(
            "fabric: nothing selected — pass experiment ids, --all, "
            "--filter, --grid NAME or --grids",
            file=sys.stderr,
        )
        return 2
    if not tasks:
        print("fabric: selection matches no tasks", file=sys.stderr)
        return 2

    if args.command == "status":
        from repro.experiments.store import scan_store

        fingerprint = code_fingerprint()
        records = scan_store(args.store)
        stored = sum(
            1
            for task in tasks
            if fabric.task_key(fingerprint, task.spec, task.seed) in records
        )
        print(
            f"fabric-status fingerprint={short_fingerprint(fingerprint)} "
            f"total={len(tasks)} stored={stored} pending={len(tasks) - stored} "
            f"store={args.store}"
        )
        return 0

    report = fabric.run_tasks(tasks, args.store, jobs=args.jobs)
    if report.fallback_reason:
        print(
            f"[fabric] process pool unavailable ({report.fallback_reason}); "
            "ran serially",
            file=sys.stderr,
        )
    print(report.summary())
    if report.failed:
        print(f"{report.failed} experiment tasks FAILED their checks", file=sys.stderr)
        return 1
    if args.strict_jobs and args.jobs > 1 and report.fallback_reason:
        print(
            "[fabric] --strict-jobs: refusing to report success after "
            "silent serial degradation",
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    return 0


def _select_ids(args: argparse.Namespace) -> list[str] | None:
    """The experiment ids a CLI invocation asks for, or None for 'help'."""
    if args.experiments:
        ids = list(args.experiments)
    elif args.all or args.filter:
        ids = all_experiment_ids()
    else:
        return None
    if args.filter:
        ids = [eid for eid in ids if args.filter in eid]
    return ids


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:]) if argv is None else list(argv)
    if arguments[:1] == ["fabric"]:
        return fabric_main(arguments[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the paper's figures and validate its theorems/lemmas."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--filter",
        metavar="SUBSTR",
        help="restrict to experiment ids containing SUBSTR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    parser.add_argument(
        "--base-seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed mixed into every derived per-task seed (default 0)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the run as a machine-readable JSON artifact at PATH",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each experiment's table as DIR/<id>.csv",
    )
    parser.add_argument(
        "--strict-jobs",
        action="store_true",
        help=(
            f"exit {EXIT_DEGRADED} if --jobs > 1 silently degraded to a "
            "serial run (default: warn on stderr and continue)"
        ),
    )
    args = parser.parse_args(arguments)

    if args.list:
        ids = _select_ids(args) or all_experiment_ids()
        specs = [get_spec(eid) for eid in ids]
        id_width = max(len("id"), *(len(s.experiment_id) for s in specs))
        family_width = max(len("family"), *(len(s.family) for s in specs))
        print(f"{'id':<{id_width}}  {'family':<{family_width}}  {'cost':>6}")
        for spec in specs:
            print(
                f"{spec.experiment_id:<{id_width}}  "
                f"{spec.family:<{family_width}}  {spec.cost:>6.1f}"
            )
        print(f"{len(specs)} experiments")
        return 0

    ids = _select_ids(args)
    if ids is None:
        parser.print_help()
        return 2
    if not ids:
        print(f"no experiment ids match --filter {args.filter!r}", file=sys.stderr)
        return 2

    report = run_experiments(ids, jobs=args.jobs, base_seed=args.base_seed)
    if report.fallback_reason:
        print(
            f"[runner] process pool unavailable ({report.fallback_reason}); "
            "ran serially",
            file=sys.stderr,
        )
    results = report.results()

    if args.csv:
        import pathlib

        from repro.analysis.sweeps import table_to_csv

        directory = pathlib.Path(args.csv)
        directory.mkdir(parents=True, exist_ok=True)
        for result in results:
            path = directory / f"{result.experiment_id}.csv"
            path.write_text(table_to_csv(result.columns, result.rows))
        print(f"wrote {len(results)} CSV tables to {directory}/")

    if args.json:
        target = write_results_json(args.json, report)
        print(f"wrote JSON artifact to {target}")

    any_failed = False
    for result in results:
        print(result.render())
        print()
        if not result.passed:
            any_failed = True
    if any_failed:
        print("SOME CHECKS FAILED", file=sys.stderr)
        return 1
    if args.strict_jobs and args.jobs > 1 and report.fallback_reason:
        # The degradation itself was already surfaced on stderr above;
        # --strict-jobs upgrades it from a warning to a failure (CI
        # wants to *know* the parallel path was exercised).
        print(
            "[runner] --strict-jobs: refusing to report success after "
            "silent serial degradation",
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    print(f"all {len(results)} experiments passed their checks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
