"""Fixtures shared by the experiment implementations."""

from __future__ import annotations


from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.graphs.lifts import cyclic_lift


def colored(graph: LabeledGraph) -> LabeledGraph:
    """Attach a greedy 2-hop coloring as the ``color`` layer."""
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def lifted_colored_c3(fiber: int) -> tuple[LabeledGraph, LabeledGraph, dict[Node, Node]]:
    """The Figure 2 family: a 2-hop colored C3 and its cyclic lift."""
    base = colored(with_uniform_input(cycle_graph(3)))
    lift, projection = cyclic_lift(base, fiber)
    return base, lift, projection
