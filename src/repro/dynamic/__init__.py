"""Dynamic networks: deterministic, replayable topology churn.

The paper's model fixes the graph for the whole run; this package makes
topology *change* first-class — so the repro can measure how the
paper's objects (views, quotients, 2-hop colorings) degrade and recover
under churn:

* :class:`Delta` / :class:`ChurnPlan` / :class:`ChurnSchedule` —
  atomic change values and declarative churn specs whose every decision
  is SHA-256-derived from the plan seed and the decision's coordinates,
  so a churned run is byte-replayable (:mod:`repro.dynamic.delta`);
* :class:`DynamicGraph` / :class:`AppliedBatch` — the mutable overlay
  applying delta batches over the immutable graph core, tracking dirty
  node sets and the append-only delta log
  (:mod:`repro.dynamic.graph`);
* :class:`DynamicViewMaintainer` / :func:`differential_check` /
  :func:`replay_views` — incremental view maintenance inside the blast
  radius, with a from-scratch byte-identity oracle and the producer
  behind the ``dynamic-views`` artifact kind
  (:mod:`repro.dynamic.maintain`);
* :func:`apply_churn` / :class:`TopologyHook` — the ambient context
  that churns every ``execute()`` call between rounds
  (:mod:`repro.dynamic.context`);
* ``python -m repro.dynamic.gate`` — the zero-churn transparency gate
  and replay-determinism check (``make dynamic-smoke``).

See ``docs/DYNAMIC.md`` for the delta model, the blast-radius rule and
the determinism contract.
"""

from repro.dynamic.context import ActiveChurn, TopologyHook, apply_churn, current
from repro.dynamic.delta import (
    ChurnPlan,
    ChurnSchedule,
    Delta,
    add_edge,
    relabel,
    remove_edge,
    reorder_ports,
)
from repro.dynamic.graph import AppliedBatch, DynamicGraph
from repro.dynamic.maintain import (
    DynamicViewMaintainer,
    UpdateStats,
    differential_check,
    replay_views,
)

__all__ = [
    "ActiveChurn",
    "AppliedBatch",
    "ChurnPlan",
    "ChurnSchedule",
    "Delta",
    "DynamicGraph",
    "DynamicViewMaintainer",
    "TopologyHook",
    "UpdateStats",
    "add_edge",
    "apply_churn",
    "current",
    "differential_check",
    "relabel",
    "remove_edge",
    "reorder_ports",
    "replay_views",
]
