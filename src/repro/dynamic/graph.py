"""`DynamicGraph`: a mutable overlay over the immutable graph core.

:class:`~repro.graphs.labeled_graph.LabeledGraph` is deliberately
immutable — views, quotients and simulations share instances freely.  A
:class:`DynamicGraph` makes topology churn possible *without* giving
that up: it holds the current immutable snapshot, applies
:class:`~repro.dynamic.delta.Delta` batches by constructing the next
snapshot, and tracks two things no snapshot can carry:

* the **dirty node sets** of the last batch (``relabeled`` — composed
  label changed; ``touched`` — incident edge set changed), which drive
  the blast-radius rule of the incremental view maintainer;
* the append-only **delta log** since the base graph, which keys
  artifact-layer invalidation (the ``dynamic-views`` spec embeds the
  base graph plus the log, so any churn rotates the content address).

The node set is invariant: deltas rewire, relabel and renumber, but a
node is never created or destroyed mid-run — the execution engine keys
states, tapes and outputs by node, and the CSR index order must stay
aligned across snapshots.  Deletions that would disconnect the graph
are rejected (the model's graphs are connected); churn schedules skip
bridges for the same reason.

Port discipline under rewiring is deterministic: an inserted edge takes
the next free port at both endpoints (appended after the existing
ports), and a deleted edge compacts the survivors in order — so two
replays of one delta log produce byte-identical port numberings.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import Any

from repro.dynamic.delta import Delta
from repro.exceptions import DynamicError
from repro.graphs.labeled_graph import LabeledGraph, Node


@dataclass(frozen=True)
class AppliedBatch:
    """What one ``apply`` call did: the new snapshot plus its dirty sets."""

    graph: LabeledGraph
    deltas: tuple[Delta, ...]
    relabeled: tuple[Node, ...]
    touched: tuple[Node, ...]

    @property
    def dirty(self) -> tuple[Node, ...]:
        """All nodes whose mark or incident edge set changed, in the
        graph's node order."""
        union = set(self.relabeled) | set(self.touched)
        return tuple(v for v in self.graph.nodes if v in union)


class DynamicGraph:
    """The mutable churn overlay: current snapshot + dirty sets + log."""

    def __init__(self, graph: LabeledGraph) -> None:
        self._base = graph
        self._graph = graph
        self._log: list[Delta] = []
        self._maintainers: list[Any] = []

    @property
    def base(self) -> LabeledGraph:
        """The graph the delta log starts from."""
        return self._base

    @property
    def graph(self) -> LabeledGraph:
        """The current immutable snapshot."""
        return self._graph

    @property
    def log(self) -> tuple[Delta, ...]:
        """Every delta applied since the base graph, in order."""
        return tuple(self._log)

    def maintainer(self, depth: int) -> Any:
        """An attached incremental view maintainer at the given depth:
        it is seeded from the current snapshot and updated automatically
        by every later :meth:`apply`."""
        from repro.dynamic.maintain import DynamicViewMaintainer

        maintainer = DynamicViewMaintainer(self._graph, depth)
        self._maintainers.append(maintainer)
        return maintainer

    def apply(self, deltas: Iterable[Delta]) -> AppliedBatch:
        """Apply one delta batch, producing (and switching to) the next
        snapshot.  The batch is atomic: any invalid delta raises
        :class:`~repro.exceptions.DynamicError` and leaves the overlay
        on the old snapshot."""
        batch = tuple(deltas)
        graph = self._graph
        nodes = graph.nodes
        adjacency: dict[Node, list[Node]] = {v: list(graph.ports(v)) for v in nodes}
        layers: dict[str, dict[Node, Any]] = {
            name: graph.layer(name) for name in graph.layer_names
        }
        touched: set[Node] = set()
        relabeled: set[Node] = set()

        for delta in batch:
            if delta.op == "add-edge":
                u, v = delta.u, delta.v
                self._require_node(u)
                self._require_node(v)
                if v in adjacency[u]:
                    raise DynamicError(
                        f"add-edge ({u!r}, {v!r}): the edge already exists"
                    )
                adjacency[u].append(v)
                adjacency[v].append(u)
                touched.add(u)
                touched.add(v)
            elif delta.op == "remove-edge":
                u, v = delta.u, delta.v
                self._require_node(u)
                self._require_node(v)
                if v not in adjacency[u]:
                    raise DynamicError(
                        f"remove-edge ({u!r}, {v!r}): no such edge"
                    )
                adjacency[u].remove(v)
                adjacency[v].remove(u)
                touched.add(u)
                touched.add(v)
            elif delta.op == "relabel":
                node, layer = delta.node, delta.layer
                self._require_node(node)
                if layer not in layers:
                    raise DynamicError(
                        f"relabel {node!r}: no layer named {layer!r}; "
                        f"available: {tuple(layers)!r}"
                    )
                if layers[layer][node] != delta.value:
                    layers[layer][node] = delta.value
                    relabeled.add(node)
            else:  # reorder-ports (validated op set in Delta.__post_init__)
                node = delta.node
                self._require_node(node)
                order = list(delta.order or ())
                if sorted(order, key=repr) != sorted(adjacency[node], key=repr):
                    raise DynamicError(
                        f"reorder-ports {node!r}: order {tuple(order)!r} is not "
                        f"a permutation of the current neighbors"
                    )
                adjacency[node] = order

        if not _connected(nodes, adjacency):
            raise DynamicError(
                f"delta batch of {len(batch)} would disconnect the graph; "
                "the model's graphs are connected (schedules skip bridges)"
            )

        edges = []
        seen: set[frozenset] = set()
        for v in nodes:
            for u in adjacency[v]:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    edges.append((v, u))
        new_graph = LabeledGraph(
            edges=edges,
            nodes=nodes,
            layers=layers,
            ports=adjacency,
            check_connected=False,
        )
        self._graph = new_graph
        self._log.extend(batch)
        applied = AppliedBatch(
            graph=new_graph,
            deltas=batch,
            relabeled=tuple(v for v in nodes if v in relabeled),
            touched=tuple(v for v in nodes if v in touched),
        )
        for maintainer in self._maintainers:
            maintainer.update(
                new_graph, relabeled=applied.relabeled, touched=applied.touched
            )
        return applied

    def _require_node(self, v: Node) -> None:
        if not self._graph.has_node(v):
            raise DynamicError(
                f"unknown node {v!r}: deltas may not create or destroy nodes"
            )

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n={self._graph.num_nodes}, m={self._graph.num_edges}, "
            f"log={len(self._log)})"
        )


def _connected(nodes: Sequence[Node], adjacency: dict[Node, list[Node]]) -> bool:
    start = nodes[0]
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(nodes)
