"""Deltas and churn plans: declarative, seeded, byte-replayable topology
changes.

A :class:`Delta` is a *pure value* describing one atomic change to a
labeled graph: an edge insert or delete, a node relabel in one layer, or
a port renumbering.  Deltas round-trip through canonical JSON (tuples
and dicts survive via the tagged encoding of :mod:`repro.graphs.io`), so
a delta log is as replayable and diffable as a fault plan.

A :class:`ChurnPlan` is the dynamic-network twin of
:class:`repro.faults.plan.FaultPlan`: a frozen value holding per-round
insert/delete/relabel rates plus a seed, with every concrete decision
derived on demand by :class:`ChurnSchedule` from a SHA-256 hash of
``(plan_seed, kind, round, coordinate)``.  Decisions are order-free —
whether attempt ``t`` of round ``r`` touches edge ``e`` depends only on
the plan and the graph state entering the round, never on evaluation
order — so the same plan replayed against the same initial graph yields
the same delta log, bit for bit, in any process.

See ``docs/DYNAMIC.md`` for the full model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from repro.exceptions import DynamicError
from repro.graphs.io import _decode, _encode
from repro.graphs.labeled_graph import LabeledGraph

OPS = ("add-edge", "remove-edge", "relabel", "reorder-ports")

_RATE_FIELDS = ("insert_rate", "delete_rate", "relabel_rate")


@dataclass(frozen=True)
class Delta:
    """One atomic topology/labeling change; hashable, picklable, comparable.

    Exactly the fields the op needs are set:

    * ``add-edge`` / ``remove-edge`` — ``u`` and ``v`` (unordered pair);
    * ``relabel`` — ``node``, ``layer`` and the new ``value``;
    * ``reorder-ports`` — ``node`` and ``order``, the node's neighbors
      in the new port order.
    """

    op: str
    u: Any = None
    v: Any = None
    node: Any = None
    layer: str | None = None
    value: Any = None
    order: tuple[Any, ...] | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise DynamicError(f"unknown delta op {self.op!r}; expected one of {OPS}")
        if self.op in ("add-edge", "remove-edge"):
            if self.u is None or self.v is None:
                raise DynamicError(f"{self.op} delta needs both endpoints u and v")
            if self.u == self.v:
                raise DynamicError(f"{self.op} delta has a loop endpoint {self.u!r}")
        elif self.op == "relabel":
            if self.node is None or self.layer is None:
                raise DynamicError("relabel delta needs a node and a layer")
        elif self.op == "reorder-ports":
            if self.node is None or self.order is None:
                raise DynamicError("reorder-ports delta needs a node and an order")
            object.__setattr__(self, "order", tuple(self.order))

    def as_dict(self) -> dict[str, Any]:
        """A canonical JSON-safe projection (op first; only the fields the
        op uses, so equal deltas serialize identically)."""
        payload: dict[str, Any] = {"op": self.op}
        if self.op in ("add-edge", "remove-edge"):
            payload["u"] = _encode(self.u)
            payload["v"] = _encode(self.v)
        elif self.op == "relabel":
            payload["node"] = _encode(self.node)
            payload["layer"] = self.layer
            payload["value"] = _encode(self.value)
        else:
            payload["node"] = _encode(self.node)
            payload["order"] = [_encode(u) for u in self.order or ()]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Delta":
        """Inverse of :meth:`as_dict`."""
        op = payload.get("op")
        if op in ("add-edge", "remove-edge"):
            return cls(op=op, u=_decode(payload["u"]), v=_decode(payload["v"]))
        if op == "relabel":
            return cls(
                op=op,
                node=_decode(payload["node"]),
                layer=payload["layer"],
                value=_decode(payload["value"]),
            )
        if op == "reorder-ports":
            return cls(
                op=op,
                node=_decode(payload["node"]),
                order=tuple(_decode(u) for u in payload["order"]),
            )
        raise DynamicError(f"unknown delta op {op!r} in payload {payload!r}")


def add_edge(u: Any, v: Any) -> Delta:
    return Delta(op="add-edge", u=u, v=v)


def remove_edge(u: Any, v: Any) -> Delta:
    return Delta(op="remove-edge", u=u, v=v)


def relabel(node: Any, layer: str, value: Any) -> Delta:
    return Delta(op="relabel", node=node, layer=layer, value=value)


def reorder_ports(node: Any, order: Any) -> Delta:
    return Delta(op="reorder-ports", node=node, order=tuple(order))


@dataclass(frozen=True)
class ChurnPlan:
    """A declarative churn specification; hashable, picklable, comparable.

    Attributes
    ----------
    plan_seed:
        Seed mixed into every churn decision.  Plans differing only in
        the seed churn statistically independent edges.
    insert_rate / delete_rate:
        Per-round attempt budgets as a fraction of the *current* edge
        count: a round makes ``round(rate * m)`` hash-indexed attempts
        (an attempt that lands on an existing edge / a loop / a bridge
        whose removal would disconnect the graph is skipped, so realized
        churn can fall below the budget).
    relabel_rate:
        Per-round relabel budget as a fraction of the node count; each
        attempt assigns a hash-picked node a hash-picked value from
        ``relabel_values`` in layer ``relabel_layer`` (no-op picks are
        skipped).
    relabel_layer / relabel_values:
        The layer relabel attempts touch and the closed value palette
        they draw from (required whenever ``relabel_rate > 0``).
    first_round / last_round:
        The round window (1-based, inclusive) in which churn applies;
        ``last_round=None`` means unbounded.
    """

    plan_seed: int = 0
    insert_rate: float = 0.0
    delete_rate: float = 0.0
    relabel_rate: float = 0.0
    relabel_layer: str = "input"
    relabel_values: tuple[Any, ...] = ()
    first_round: int = 1
    last_round: int | None = None

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise DynamicError(f"{name} must lie in [0, 1], got {rate!r}")
        object.__setattr__(self, "relabel_values", tuple(self.relabel_values))
        if self.relabel_rate > 0.0 and not self.relabel_values:
            raise DynamicError(
                "relabel_rate > 0 requires a nonempty relabel_values palette"
            )
        if self.first_round < 1:
            raise DynamicError(f"first_round must be >= 1, got {self.first_round}")
        if self.last_round is not None and self.last_round < self.first_round:
            raise DynamicError(
                f"last_round {self.last_round} precedes first_round {self.first_round}"
            )

    @property
    def is_empty(self) -> bool:
        """Whether this plan churns nothing at all."""
        return all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)

    def as_dict(self) -> dict[str, Any]:
        """A JSON-safe projection (tuple values survive via the tagged
        encoding)."""
        return {
            "plan_seed": self.plan_seed,
            "insert_rate": self.insert_rate,
            "delete_rate": self.delete_rate,
            "relabel_rate": self.relabel_rate,
            "relabel_layer": self.relabel_layer,
            "relabel_values": [_encode(value) for value in self.relabel_values],
            "first_round": self.first_round,
            "last_round": self.last_round,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ChurnPlan":
        """Inverse of :meth:`as_dict`."""
        data = dict(payload)
        data["relabel_values"] = tuple(
            _decode(value) for value in data.get("relabel_values", ())
        )
        return cls(**data)


class ChurnSchedule:
    """Derives every concrete churn decision of a :class:`ChurnPlan`.

    Each decision hashes ``(plan_seed, kind, *coordinates)`` with
    SHA-256 and uses the leading 64 bits, scaled to ``[0, 1)``, to pick
    an edge, a node pair or a palette value.  Attempts are indexed, not
    scanned, so a round's batch costs ``O(attempts)`` hash calls — never
    ``O(n^2)`` candidate enumeration — and depends only on the plan and
    the graph state entering the round.
    """

    def __init__(self, plan: ChurnPlan) -> None:
        self.plan = plan

    def _fraction(self, kind: str, *coords: Any) -> float:
        key = "\x1f".join([str(self.plan.plan_seed), kind, *map(str, coords)])
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def in_window(self, round_number: int) -> bool:
        if round_number < self.plan.first_round:
            return False
        last = self.plan.last_round
        return last is None or round_number <= last

    def batch(self, round_number: int, graph: LabeledGraph) -> tuple[Delta, ...]:
        """The delta batch churned between ``round_number`` and the next
        round, given the graph entering it.  Deletions come first, then
        insertions, then relabels; every delta is valid against the batch
        applied so far (no double-deletes, no disconnecting deletes, no
        duplicate inserts)."""
        if self.plan.is_empty or not self.in_window(round_number):
            return ()
        deltas: list[Delta] = []
        edges = {frozenset(edge) for edge in graph.edges()}
        nodes = graph.nodes
        num_edges = len(edges)

        deletes = round(self.plan.delete_rate * num_edges)
        if deletes:
            # graph.edges() yields sorted pairs in sorted order, so the
            # pool indexing is deterministic and instance-independent.
            pool = list(graph.edges())
            for attempt in range(deletes):
                pick = int(
                    self._fraction("delete", round_number, attempt) * len(pool)
                )
                u, v = pool[pick]
                key = frozenset((u, v))
                if key not in edges:
                    continue  # already deleted by an earlier attempt
                if not _connected_without(graph, edges, key):
                    continue  # a bridge: deleting it would disconnect
                edges.discard(key)
                deltas.append(Delta(op="remove-edge", u=u, v=v))

        inserts = round(self.plan.insert_rate * num_edges)
        for attempt in range(inserts):
            i = int(self._fraction("insert-u", round_number, attempt) * len(nodes))
            j = int(self._fraction("insert-v", round_number, attempt) * len(nodes))
            u, v = nodes[i], nodes[j]
            if u == v:
                continue
            key = frozenset((u, v))
            if key in edges:
                continue
            edges.add(key)
            deltas.append(Delta(op="add-edge", u=u, v=v))

        relabels = round(self.plan.relabel_rate * len(nodes))
        if relabels:
            palette = self.plan.relabel_values
            layer = self.plan.relabel_layer
            effective: dict[Any, Any] = {}  # batch-local label overlay
            for attempt in range(relabels):
                i = int(
                    self._fraction("relabel-node", round_number, attempt) * len(nodes)
                )
                p = int(
                    self._fraction("relabel-value", round_number, attempt)
                    * len(palette)
                )
                node, value = nodes[i], palette[p]
                current = (
                    effective[node]
                    if node in effective
                    else graph.label_of(node, layer)
                )
                if current == value:
                    continue  # a no-op relabel carries no information
                effective[node] = value
                deltas.append(
                    Delta(op="relabel", node=node, layer=layer, value=value)
                )
        return tuple(deltas)


def _connected_without(
    graph: LabeledGraph, edges: set, removed: frozenset
) -> bool:
    """Whether the graph stays connected once ``removed`` leaves the
    (batch-local) edge set — BFS over the surviving edges only."""
    survivors = edges - {removed}
    adjacency: dict[Any, list[Any]] = {v: [] for v in graph.nodes}
    for edge in survivors:
        u, v = tuple(edge)
        adjacency[u].append(v)
        adjacency[v].append(u)
    start = graph.nodes[0]
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == graph.num_nodes
