"""Zero-churn transparency gate: ``python -m repro.dynamic.gate``.

The dynamic subsystem's core transparency contract, enforced as an
executable check (wired into CI as ``make dynamic-smoke``):

1. **Zero-churn identity** — running the *full* experiment registry
   under an ambient empty :class:`~repro.dynamic.delta.ChurnPlan`
   (every execution carrying a live
   :class:`~repro.dynamic.context.TopologyHook`) produces canonical
   results byte-identical to the bare engine, and applies exactly zero
   deltas.
2. **Churned replay determinism** — the ``dynamic`` experiment family,
   whose experiments run fixed nonzero plans, produces canonical
   results byte-identical across consecutive runs and across
   ``jobs=1`` vs ``jobs=4``.

Exits 0 if both hold, 1 with a diff summary otherwise.
"""

from __future__ import annotations

import json
import sys

from repro.dynamic.context import apply_churn
from repro.dynamic.delta import ChurnPlan
from repro.experiments.base import all_experiment_ids, get_spec
from repro.experiments.runner import (
    canonical_results,
    results_payload,
    run_experiments,
)


def _canonical_bytes(ids: list[str], *, jobs: int = 1) -> str:
    report = run_experiments(ids, jobs=jobs)
    return json.dumps(canonical_results(results_payload(report)), sort_keys=True)


def _first_divergence(a: str, b: str) -> str:
    """A short context window around the first differing byte."""
    for i, (ca, cb) in enumerate(zip(a, b)):
        if ca != cb:
            lo = max(0, i - 60)
            return f"at byte {i}: ...{a[lo:i + 60]!r} vs ...{b[lo:i + 60]!r}"
    return f"lengths differ: {len(a)} vs {len(b)}"


def main() -> int:
    failures = []
    ids = all_experiment_ids()

    print(f"[gate] zero-churn identity over {len(ids)} experiments ...")
    bare = _canonical_bytes(ids)
    with apply_churn(ChurnPlan()) as churn:
        hooked = _canonical_bytes(ids)
    if bare != hooked:
        failures.append(
            "zero-churn identity: canonical results diverge under an empty "
            f"ChurnPlan ({_first_divergence(bare, hooked)})"
        )
    if churn.deltas_applied != 0:
        failures.append(
            f"zero-churn identity: empty plan applied {churn.deltas_applied} "
            "deltas"
        )

    family = [eid for eid in ids if get_spec(eid).family == "dynamic"]
    print(f"[gate] churned replay determinism over {family} ...")
    serial_a = _canonical_bytes(family, jobs=1)
    serial_b = _canonical_bytes(family, jobs=1)
    fanned = _canonical_bytes(family, jobs=4)
    if serial_a != serial_b:
        failures.append(
            "churned replay: consecutive serial runs diverge "
            f"({_first_divergence(serial_a, serial_b)})"
        )
    if serial_a != fanned:
        failures.append(
            "churned replay: jobs=1 vs jobs=4 diverge "
            f"({_first_divergence(serial_a, fanned)})"
        )

    if failures:
        for failure in failures:
            print(f"[gate] FAILED: {failure}", file=sys.stderr)
        return 1
    print("[gate] ok: zero-churn runs are byte-identical to the bare engine;")
    print("[gate] ok: nonzero churn plans replay byte-identically (serial and fanned)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
