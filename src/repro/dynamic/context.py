"""Ambient topology churn: ``with apply_churn(plan): ...``.

Every :func:`~repro.runtime.engine.execute` call that happens inside an
:func:`apply_churn` block gets a :class:`TopologyHook` appended to its
hooks: after each completed round the hook derives the round's delta
batch from the plan's :class:`~repro.dynamic.delta.ChurnSchedule`,
applies it through a per-execution
:class:`~repro.dynamic.graph.DynamicGraph`, and swaps the engine onto
the new snapshot — so round ``r+1``'s delivery runs over the churned
edges.  The hook is installed unconditionally: an *empty* plan still
rides along (observing every round, churning nothing), which is exactly
what the zero-churn transparency gate (``make dynamic-smoke``) exploits
— a full-registry run under ``ChurnPlan()`` must be byte-identical to a
bare run.

Churn composes with fault injection: fault decisions key on ``(round,
receiver, sender)`` and never on the edge set, and the fault wrappers
read the engine's graph fresh each round, so ``inject_faults`` and
``apply_churn`` blocks nest in either order.

Contexts nest (the innermost plan wins) and are plain process-local
state: a worker process of the parallel experiment runner does not
inherit the parent's context.  Experiments that want churn construct
plans *inside* their (picklable, top-level) experiment functions — see
:mod:`repro.experiments.dynamic`.

Engines constructed directly (``ExecutionEngine(...)`` or the scheduler
shims) bypass the ambient context; attach a :class:`TopologyHook`
explicitly if needed.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterator
from typing import Any

from repro.dynamic.delta import ChurnPlan, ChurnSchedule, Delta
from repro.dynamic.graph import DynamicGraph
from repro.graphs.labeled_graph import LabeledGraph
from repro.runtime import engine as _engine
from repro.runtime.engine import RoundHook


class TopologyHook(RoundHook):
    """Applies one schedule's churn to one execution, round by round.

    The hook owns a :class:`DynamicGraph` overlay seeded from the
    engine's starting graph; the batch derived *for* round ``r`` is
    applied after round ``r`` completes, so it affects delivery from
    round ``r+1`` on.  The overlay's delta log is the execution's full
    churn record (``hook.dynamic.log``).
    """

    def __init__(
        self, schedule: ChurnSchedule, context: "ActiveChurn | None" = None
    ) -> None:
        self._schedule = schedule
        self._context = context
        self.dynamic: DynamicGraph | None = None

    @property
    def log(self) -> tuple[Delta, ...]:
        """Every delta this hook has applied so far."""
        return self.dynamic.log if self.dynamic is not None else ()

    def on_start(self, engine: Any) -> None:
        self.dynamic = DynamicGraph(engine.graph)

    def on_round(self, engine: Any, new_outputs: Any) -> None:
        if self.dynamic is None:  # manual step() without run(): lazy-seed
            self.dynamic = DynamicGraph(engine.graph)
        deltas = self._schedule.batch(engine.rounds, self.dynamic.graph)
        if not deltas:
            return
        applied = self.dynamic.apply(deltas)
        engine.swap_graph(applied.graph)
        if self._context is not None:
            self._context.deltas_applied += len(deltas)

    def on_finish(self, engine: Any, result: Any) -> None:
        if self._context is not None and self.dynamic is not None:
            self._context.execution_logs.append(self.dynamic.log)


class ActiveChurn:
    """One active ``apply_churn`` block.

    ``deltas_applied`` counts every delta applied by every execution in
    the block; ``execution_logs`` keeps each finished execution's full
    delta log (in execution order).  :meth:`hook_for` gives each
    execution a fresh hook — hooks carry per-run overlay state, so they
    are never shared between runs.
    """

    def __init__(self, plan: ChurnPlan) -> None:
        self.plan = plan
        self.schedule = ChurnSchedule(plan)
        self.deltas_applied = 0
        self.execution_logs: list[tuple[Delta, ...]] = []

    def hook_for(self, graph: LabeledGraph) -> TopologyHook:
        return TopologyHook(self.schedule, context=self)

    @property
    def last_execution_log(self) -> "tuple[Delta, ...] | None":
        """The delta log of the most recently finished execution."""
        return self.execution_logs[-1] if self.execution_logs else None


_ACTIVE: list[ActiveChurn] = []


def current() -> ActiveChurn | None:
    """The innermost active churn context, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def apply_churn(plan: ChurnPlan) -> Iterator[ActiveChurn]:
    """Run every ``execute()`` call in the block under ``plan``.

    Yields the :class:`ActiveChurn`, whose ``execution_logs`` record
    each execution's applied deltas.
    """
    churn = ActiveChurn(plan)
    _ACTIVE.append(churn)
    try:
        yield churn
    finally:
        _ACTIVE.remove(churn)


_engine.register_topology_provider(current)
