"""Incremental view maintenance: recompute only inside the blast radius.

The views ``L_d(v)`` satisfy the inductive rule the paper builds on:
``L_{k+1}(v)`` is a fresh ``l(v)``-marked root over the multiset
``{L_k(u) : u in N(v)}``.  A delta batch therefore perturbs a sharply
bounded region — the **blast-radius rule**:

* at depth 1 only *relabeled* nodes change (``L_1`` is the bare mark);
* at depth ``k+1`` a node needs recomputation iff it is *dirty* (its
  mark or its neighbor set changed — its inputs are permanently
  different) or one of its *new-graph* neighbors actually changed at
  depth ``k``.

The maintainer keeps one interned tree per (node, depth) and propagates
a *changed front* level by level: dirty nodes are recomputed at every
level, and a recomputation whose interned result is the identical
object stops the propagation through that node — hash-consing makes
"did anything change" an ``is`` check.  Everything outside the front is
reused by identity, which is also what makes the from-scratch oracle
exact: a fresh :class:`~repro.views.local_views.ViewBuilder` over the
same snapshot must produce the *same interned objects*, so
:func:`differential_check` compares object identity and canonical
payload bytes, not just structural equality.

Port renumbering has an *empty* blast radius: views are built from
marks and neighbor sets, never from port numbers, so ``reorder-ports``
deltas leave every tree untouched (and the oracle proves it).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

from repro.artifacts.specs import dynamic_views_spec
from repro.artifacts.store import note_artifact
from repro.exceptions import DynamicError
from repro.graphs.csr import csr_of
from repro.graphs.io import graph_from_dict, graph_to_dict
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.views import view_tree
from repro.views.local_views import ViewBuilder
from repro.views.view_tree import ViewTree


@dataclass(frozen=True)
class UpdateStats:
    """Work accounting for one ``update`` call.

    ``recomputed`` counts ``ViewTree`` constructions inside the blast
    radius; ``reused`` counts (node, depth) slots served by identity
    from the previous state; ``changed`` counts recomputations whose
    result actually differed.  ``recomputed + reused`` always equals
    ``n * depth``.
    """

    recomputed: int
    reused: int
    changed: int

    @property
    def reuse_fraction(self) -> float:
        total = self.recomputed + self.reused
        return self.reused / total if total else 1.0


class DynamicViewMaintainer:
    """Per-node interned view trees for depths ``1 .. depth``, updated
    incrementally as the graph churns.

    Seed it with a snapshot (the initial build rides the shared
    per-class :class:`ViewBuilder` machinery), then feed it each new
    snapshot plus the batch's dirty sets — directly, or automatically
    through :meth:`repro.dynamic.graph.DynamicGraph.maintainer`.
    """

    def __init__(self, graph: LabeledGraph, depth: int) -> None:
        if depth < 1:
            raise DynamicError(f"view depth must be at least 1, got {depth}")
        self.depth = depth
        self._graph = graph
        self._levels: list[list[ViewTree]] = []
        builder = ViewBuilder(graph)
        nodes = graph.nodes
        for level in range(1, depth + 1):
            per_node = builder.views(level)
            self._levels.append([per_node[v] for v in nodes])
        self.updates = 0
        self.total_recomputed = 0
        self.total_reused = 0
        self.last_stats: UpdateStats | None = None

    @property
    def graph(self) -> LabeledGraph:
        """The snapshot the current trees describe."""
        return self._graph

    def views(self, depth: int | None = None) -> dict[Node, ViewTree]:
        """``{v: L_depth(v)}`` on the current snapshot (a fresh dict)."""
        depth = self.depth if depth is None else depth
        if not 1 <= depth <= self.depth:
            raise DynamicError(
                f"maintained depths are 1..{self.depth}, got {depth}"
            )
        return dict(zip(self._graph.nodes, self._levels[depth - 1]))

    def update(
        self,
        new_graph: LabeledGraph,
        relabeled: Sequence[Node] = (),
        touched: Sequence[Node] = (),
    ) -> UpdateStats:
        """Advance to ``new_graph``, recomputing only the blast radius.

        ``relabeled`` are the nodes whose composed label changed and
        ``touched`` the nodes whose incident edge set changed (the two
        dirty sets an :class:`~repro.dynamic.graph.AppliedBatch`
        reports).  Understating them corrupts the state; overstating
        them only wastes recomputation.
        """
        if new_graph.nodes != self._graph.nodes:
            raise DynamicError(
                "incremental maintenance requires an invariant node set: "
                f"{len(self._graph.nodes)} nodes became {len(new_graph.nodes)}"
            )
        csr = csr_of(new_graph)
        index = csr.index
        adjacency = csr.adjacency
        label_ranks = csr.label_ranks
        rank_marks = csr.label_values
        rank_mark_ids = [view_tree._mark_id_of(mark) for mark in rank_marks]
        make = view_tree._make_ranked
        levels = self._levels

        relabeled_idx = sorted(index[v] for v in set(relabeled))
        dirty = sorted(
            {index[v] for v in relabeled}.union(index[v] for v in touched)
        )
        recomputed = 0
        changed_total = 0

        # Depth 1: the bare mark — only relabeled nodes can change.
        front: list[int] = []
        leaves = levels[0]
        for i in relabeled_idx:
            rank = label_ranks[i]
            tree = make(rank_marks[rank], rank_mark_ids[rank], ())
            recomputed += 1
            if tree is not leaves[i]:
                leaves[i] = tree
                front.append(i)
        changed_total += len(front)

        # Depths 2..d: dirty nodes always recompute (their inputs are
        # structurally different); neighbors of the changed front
        # recompute because one of their child trees moved.  An `is`-
        # identical result stops propagation through that node.
        for level in range(1, self.depth):
            recompute = set(dirty)
            for i in front:
                recompute.update(adjacency[i])
            prev = levels[level - 1]
            current = levels[level]
            front = []
            for i in sorted(recompute):
                rank = label_ranks[i]
                tree = make(
                    rank_marks[rank],
                    rank_mark_ids[rank],
                    [prev[j] for j in adjacency[i]],
                )
                recomputed += 1
                if tree is not current[i]:
                    current[i] = tree
                    front.append(i)
            changed_total += len(front)

        self._graph = new_graph
        self.updates += 1
        total_slots = self.depth * len(new_graph.nodes)
        stats = UpdateStats(
            recomputed=recomputed,
            reused=total_slots - recomputed,
            changed=changed_total,
        )
        self.total_recomputed += stats.recomputed
        self.total_reused += stats.reused
        self.last_stats = stats
        return stats

    def stats(self) -> dict[str, Any]:
        """Cumulative work accounting across every update."""
        total = self.total_recomputed + self.total_reused
        return {
            "updates": self.updates,
            "recomputed": self.total_recomputed,
            "reused": self.total_reused,
            "reuse_fraction": self.total_reused / total if total else 1.0,
        }


def replay_views(
    base: LabeledGraph, deltas: Sequence[Any], depth: int
) -> dict[Node, ViewTree]:
    """The views described by a ``dynamic-views`` spec: replay ``deltas``
    over ``base`` through a maintainer and return the final depth-``depth``
    view map.  This is the producer behind the artifact kind — its
    content address covers the base graph *and* the delta log, so any
    churn rotates the key and invalidates stale payloads."""
    from repro.dynamic.graph import DynamicGraph

    dynamic = DynamicGraph(base)
    maintainer = dynamic.maintainer(depth)
    if deltas:
        dynamic.apply(tuple(deltas))
    note_artifact(lambda: dynamic_views_spec(base, dynamic.log, depth))
    return maintainer.views()


def differential_check(maintainer: DynamicViewMaintainer) -> None:
    """The from-scratch oracle: prove the incremental state byte-identical
    (and object-identical) to a clean rebuild of the current snapshot.

    The snapshot is round-tripped through
    :func:`~repro.graphs.io.graph_to_dict` so the rebuild shares *no*
    caches with the maintained instance — only the process-wide intern
    table, which is exactly what makes identity the right equality.
    Raises :class:`~repro.exceptions.DynamicError` at the first
    divergence, naming the node and depth.
    """
    from repro.artifacts.encoders import encode_views

    graph = maintainer.graph
    rebuilt = graph_from_dict(graph_to_dict(graph))
    builder = ViewBuilder(rebuilt)
    for depth in range(1, maintainer.depth + 1):
        fresh = builder.views(depth)
        maintained = maintainer.views(depth)
        for node in graph.nodes:
            if maintained[node] is not fresh[node]:
                raise DynamicError(
                    f"incremental view of node {node!r} at depth {depth} is "
                    f"not the interned from-scratch tree"
                )
        if encode_views(maintained) != encode_views(fresh):
            raise DynamicError(
                f"incremental depth-{depth} view payload diverges from the "
                "from-scratch encoding"
            )
