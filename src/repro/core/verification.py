"""Conformance checking for GRAN bundles — "is my algorithm certifiable?"

Theorem 1 consumes a :class:`~repro.problems.gran.GranBundle`; anyone
adding their own problem + algorithms wants to know whether the bundle
actually satisfies the hypotheses the derandomization relies on.  This
module runs the executable battery:

* **solver validity** — Las-Vegas outputs valid on every (instance,
  seed) pair tried;
* **decider correctness** — all-YES on instances, some-NO on
  non-instances;
* **replayability** — recorded executions reproduce exactly from their
  bit assignments (the property "simulation induced by b" requires);
* **liftability** — executions lift along factorizing maps with
  per-fiber identical outputs (port-obliviousness in practice);
* **factor closure** — instance quotients are instances (the part of
  genuine solvability that anonymous deciders enforce);
* **derandomizability** — the practical derandomizer produces valid,
  deterministic outputs on colored instances.

A failed check does not raise; the returned report says what failed and
on which case, so bundle authors can iterate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.exceptions import ReproError
from repro.factor.factorizing_map import FactorizingMap
from repro.factor.lifting import verify_execution_lifting
from repro.factor.quotient import finite_view_graph
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.lifts import lift_graph
from repro.problems.decision import decision_outputs_valid
from repro.problems.gran import GranBundle
from repro.runtime.algorithm import randomized_shell
from repro.runtime.engine import execute
from repro.core.practical import PracticalDerandomizer


@dataclass(frozen=True)
class CheckOutcome:
    """One conformance check on one case."""

    check: str
    case: str
    passed: bool
    detail: str = ""


@dataclass
class ConformanceReport:
    """All outcomes of a conformance run."""

    bundle_name: str
    outcomes: list[CheckOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    def failures(self) -> list[CheckOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    def summary(self) -> str:
        by_check: dict = {}
        for outcome in self.outcomes:
            totals = by_check.setdefault(outcome.check, [0, 0])
            totals[0] += outcome.passed
            totals[1] += 1
        lines = [f"conformance of {self.bundle_name!r}:"]
        for check, (ok, total) in by_check.items():
            marker = "ok " if ok == total else "FAIL"
            lines.append(f"  [{marker}] {check}: {ok}/{total}")
        return "\n".join(lines)


def check_gran_bundle(
    bundle: GranBundle,
    instances: Sequence[tuple[str, LabeledGraph]],
    non_instances: Sequence[tuple[str, LabeledGraph]] = (),
    seeds: Iterable[int] = (0, 1, 2),
    lift_fiber: int = 2,
    derandomize: bool = True,
    max_rounds: int = 10_000,
) -> ConformanceReport:
    """Run the full conformance battery.

    ``instances`` must be legal inputs of ``bundle.problem``;
    ``non_instances`` (optional) exercise the decider's NO side.
    ``lift_fiber`` controls the liftability check (skipped for tree
    instances, which have no connected nontrivial lifts).
    """
    report = ConformanceReport(bundle_name=bundle.problem.name)
    seeds = list(seeds)

    for name, graph in instances:
        _check_instance(report, bundle, name, graph, seeds, lift_fiber, max_rounds)
        if derandomize:
            _check_derandomizable(report, bundle, name, graph, max_rounds)

    for name, graph in non_instances:
        expected = bundle.problem.is_instance(graph)
        for seed in seeds:
            try:
                result = execute(
                    bundle.decider,
                    graph,
                    seed=seed,
                    max_rounds=max_rounds,
                    require_decided=True,
                )
                ok = decision_outputs_valid(expected, result.outputs)
                detail = "" if ok else f"verdicts {result.outputs!r}"
            except ReproError as exc:
                ok, detail = False, str(exc)
            report.outcomes.append(
                CheckOutcome("decider-rejects", f"{name}/seed{seed}", ok, detail)
            )
    return report


# ----------------------------------------------------------------------


def _check_instance(report, bundle, name, graph, seeds, lift_fiber, max_rounds):
    problem, decider = bundle.problem, bundle.decider
    # Deterministic solvers are a special case of randomized ones; the
    # shell makes them acceptable to the assignment-based machinery.
    solver = randomized_shell(bundle.solver)

    if not problem.is_instance(graph):
        report.outcomes.append(
            CheckOutcome("instances-legal", name, False, "not an instance")
        )
        return
    report.outcomes.append(CheckOutcome("instances-legal", name, True))

    # Solver validity + replayability per seed.
    recorded = None
    for seed in seeds:
        try:
            result = execute(
                solver, graph, seed=seed, max_rounds=max_rounds, require_decided=True
            )
            valid = problem.is_valid_output(graph, result.outputs)
            report.outcomes.append(
                CheckOutcome(
                    "solver-valid",
                    f"{name}/seed{seed}",
                    valid,
                    "" if valid else f"outputs {result.outputs!r}",
                )
            )
            replay = execute(
                solver, graph, assignment=result.trace.assignment()
            )
            report.outcomes.append(
                CheckOutcome(
                    "replayable",
                    f"{name}/seed{seed}",
                    replay.successful and replay.outputs == result.outputs,
                )
            )
            recorded = result
        except ReproError as exc:
            report.outcomes.append(
                CheckOutcome("solver-valid", f"{name}/seed{seed}", False, str(exc))
            )

    # Decider accepts instances.
    try:
        result = execute(
            decider, graph, seed=seeds[0], max_rounds=max_rounds, require_decided=True
        )
        report.outcomes.append(
            CheckOutcome(
                "decider-accepts",
                name,
                decision_outputs_valid(True, result.outputs),
            )
        )
    except ReproError as exc:
        report.outcomes.append(CheckOutcome("decider-accepts", name, False, str(exc)))

    # Liftability: run on the graph as factor, lift to a product.
    if lift_fiber > 1 and graph.num_edges > graph.num_nodes - 1 and recorded is not None:
        try:
            lift, projection = lift_graph(graph, lift_fiber, seed=1)
            fm = FactorizingMap(lift, graph, projection)
            comparison = verify_execution_lifting(
                solver, fm, recorded.trace.assignment()
            )
            report.outcomes.append(
                CheckOutcome("liftable", name, comparison.lemma_holds)
            )
        except ReproError as exc:
            report.outcomes.append(CheckOutcome("liftable", name, False, str(exc)))

    # Factor closure: the colored quotient's input part is an instance.
    try:
        colored = apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))
        quotient = finite_view_graph(colored)
        closed = problem.is_instance(
            quotient.graph.with_only_layers([problem.input_layer])
        )
        report.outcomes.append(CheckOutcome("factor-closed", name, closed))
    except ReproError as exc:
        report.outcomes.append(CheckOutcome("factor-closed", name, False, str(exc)))


def _check_derandomizable(report, bundle, name, graph, max_rounds):
    problem = bundle.problem
    solver = randomized_shell(bundle.solver)
    try:
        colored = apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))
        derandomizer = PracticalDerandomizer(
            problem, solver, strategy="prg", max_assignment_length=256
        )
        first = derandomizer.solve(colored)
        second = derandomizer.solve(colored)
        valid = problem.is_valid_output(
            colored.with_only_layers([problem.input_layer]), first.outputs
        )
        deterministic = first.outputs == second.outputs
        report.outcomes.append(
            CheckOutcome(
                "derandomizable",
                name,
                valid and deterministic,
                "" if valid else "invalid outputs"
                if not deterministic
                else "nondeterministic outputs",
            )
        )
    except ReproError as exc:
        report.outcomes.append(CheckOutcome("derandomizable", name, False, str(exc)))
