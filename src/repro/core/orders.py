"""The predetermined total orders of Sections 2.1, 2.2 and 3.1.

Everything in the derandomization hinges on all nodes independently
computing the *same* orders:

* **views** — :meth:`repro.views.view_tree.ViewTree.compare` (canonical,
  construction-order independent);
* **node order of a prime graph** — nodes sorted by their view aliases;
  for quotient graphs produced by this library that is exactly the
  integer class order, because classes are numbered canonically;
* **bit assignments** ``b : V -> {0,1}^t`` — by ``t`` first, then
  lexicographically on the tuple ``(b(w_1), ..., b(w_k))`` under the
  node order;
* **finite view graphs** — by node count, then lexicographically on the
  bitstring encoding ``s(G_*)`` relative to the canonical node order.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.exceptions import DerandomizationError
from repro.graphs.encoding import encode_ordered_graph
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.views.refinement import refinement_indices


def canonical_node_order(graph: LabeledGraph) -> list[Node]:
    """The canonical total order on the nodes of a *prime* labeled graph.

    Nodes are ordered by their canonical view aliases; since the graph is
    prime, views are distinct (Lemma 4 / Corollary 1) and the order is
    total.  Implemented via the stable refinement classes, whose
    numbering is content-derived and therefore identical for isomorphic
    graphs.  Raises :class:`DerandomizationError` if two nodes share a
    class (graph not prime).
    """
    csr, colors = refinement_indices(graph)
    num_classes = max(colors) + 1
    if num_classes != graph.num_nodes:
        raise DerandomizationError(
            "canonical_node_order needs a prime graph; view classes collide "
            f"(n={graph.num_nodes}, classes={num_classes})"
        )
    # Primality makes class numbering a permutation of the node indices:
    # position c in the order is the node of class c.
    order: list[Node] = [None] * num_classes
    nodes = csr.nodes
    for i, c in enumerate(colors):
        order[c] = nodes[i]
    return order


def assignment_sort_key(
    assignment: Mapping[Node, str], node_order: Sequence[Node]
) -> tuple[int, tuple[str, ...]]:
    """Sort key realizing the paper's total order on uniform-length
    assignments: ``b_1 < b_2`` iff ``t_1 < t_2``, or ``t_1 = t_2`` and
    ``(b_1(w_1), ..., b_1(w_k)) <lex (b_2(w_1), ..., b_2(w_k))``."""
    missing = [v for v in node_order if v not in assignment]
    if missing:
        raise DerandomizationError(f"assignment misses nodes {missing!r}")
    lengths = {len(assignment[v]) for v in node_order}
    if len(lengths) != 1:
        raise DerandomizationError(
            "assignment order is defined on uniform-length assignments, "
            f"got lengths {sorted(lengths)!r}"
        )
    return (lengths.pop(), tuple(assignment[v] for v in node_order))


def finite_view_graph_sort_key(graph: LabeledGraph) -> tuple[int, str]:
    """Sort key realizing the order on finite view graphs: ``G_* < G'_*``
    iff ``|V_*| < |V'_*|``, or equal sizes and ``s(G_*) < s(G'_*)``.

    ``s`` is computed relative to the canonical node order, so the key of
    two isomorphic finite view graphs is identical (the encoding is a
    canonical form on prime graphs)."""
    order = canonical_node_order(graph)
    return (graph.num_nodes, encode_ordered_graph(graph, order))


def view_order_of_nodes(graph: LabeledGraph) -> dict[Node, int]:
    """Each node's position in the canonical node order (prime graphs)."""
    return {v: i for i, v in enumerate(canonical_node_order(graph))}
