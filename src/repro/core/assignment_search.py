"""Searching for successful simulations in the assignment order.

``A_∞`` needs the globally smallest successful assignment (Section 2.2);
``A_*``'s Update-Bits needs the smallest successful *p-extension* of a
prefix assignment (Section 3.1).  Both reduce to enumerating, for a
fixed target length, all fillings of the free suffix bits in
lexicographic order of the node-ordered tuple — which is a plain binary
counter over the free bits with the first node's bits most significant.

The search is exponential in ``(#nodes × target length)`` — that is the
honest cost of the paper's construction, and one of the things our
benchmarks measure.  A budget guard raises
:class:`SearchBudgetExceeded` rather than hanging.  An alternative
``"prg"`` strategy enumerates candidate fillings in a *deterministic
pseudorandom* order instead: every node still computes the same
predetermined order (all Lemma 1 needs), but the expected number of
trials drops from exponential to ``O(1 / p_success)`` — our ablation
experiment quantifies the difference.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Mapping, Sequence

from repro.exceptions import DerandomizationError
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import execute

Assignment = dict[Node, str]


class SearchBudgetExceeded(DerandomizationError):
    """The assignment search hit its trial budget before finding success."""


def enumerate_extensions(
    prefix: Mapping[Node, str],
    node_order: Sequence[Node],
    target_length: int,
    strategy: str = "lexicographic",
    prg_seed: int = 0,
    limit: int | None = None,
) -> Iterator[Assignment]:
    """Yield the ``target_length``-extensions of ``prefix`` in a
    predetermined total order.

    ``"lexicographic"`` yields them in the paper's assignment order
    (smallest first).  ``"prg"`` yields them in a fixed pseudorandom
    order (deduplicated), still deterministic for given inputs.
    ``limit`` caps the number of yielded assignments.
    """
    free_counts = []
    for v in node_order:
        current = prefix.get(v, "")
        if len(current) > target_length:
            raise DerandomizationError(
                f"prefix of node {v!r} has length {len(current)} > target "
                f"{target_length}; not extendable"
            )
        free_counts.append(target_length - len(current))
    total_free = sum(free_counts)

    def build(filling: str) -> Assignment:
        assignment: Assignment = {}
        position = 0
        for v, count in zip(node_order, free_counts):
            assignment[v] = prefix.get(v, "") + filling[position : position + count]
            position += count
        return assignment

    space = 1 << total_free
    if strategy == "lexicographic":
        indices: Iterator[int] = iter(range(space))
    elif strategy == "prg":
        indices = _prg_indices(space, prg_seed)
    else:
        raise DerandomizationError(f"unknown search strategy {strategy!r}")

    yielded = 0
    for index in indices:
        if limit is not None and yielded >= limit:
            return
        filling = format(index, f"0{total_free}b") if total_free else ""
        yield build(filling)
        yielded += 1


def _prg_indices(space: int, seed: int) -> Iterator[int]:
    """A deterministic pseudorandom enumeration of ``range(space)`` without
    replacement (rejection sampling backed by a seen-set; for very large
    spaces callers bound the draw count via their budget)."""
    rng = random.Random(seed)
    seen: set = set()
    while len(seen) < space:
        index = rng.randrange(space)
        if index in seen:
            continue
        seen.add(index)
        yield index


def smallest_successful_extension(
    algorithm: AnonymousAlgorithm,
    graph: LabeledGraph,
    node_order: Sequence[Node],
    prefix: Mapping[Node, str],
    target_length: int,
    budget: int = 1_000_000,
    strategy: str = "lexicographic",
) -> Assignment | None:
    """The first successful ``target_length``-extension of ``prefix`` in the
    chosen predetermined order, or ``None`` when no extension of this
    length succeeds.  Raises :class:`SearchBudgetExceeded` when the
    budget runs out with candidates still untried."""
    tried = 0
    exhausted = True
    for assignment in enumerate_extensions(
        prefix, node_order, target_length, strategy=strategy
    ):
        if tried >= budget:
            exhausted = False
            break
        tried += 1
        result = execute(algorithm, graph, assignment=assignment)
        if result.successful:
            return assignment
    if not exhausted:
        raise SearchBudgetExceeded(
            f"no successful extension of length {target_length} within "
            f"{budget} trials (space not exhausted)"
        )
    return None


def smallest_successful_assignment(
    algorithm: AnonymousAlgorithm,
    graph: LabeledGraph,
    node_order: Sequence[Node],
    max_length: int = 64,
    budget: int = 1_000_000,
    strategy: str = "lexicographic",
) -> Assignment:
    """The first successful assignment in the strategy's predetermined
    order.

    ``"lexicographic"`` is the paper's total order: lengths
    ``t = 1, 2, ...`` in turn, lexicographic within a length — the result
    is the globally smallest successful assignment.  ``"prg"`` trades
    minimality for tractability while keeping determinism: lengths double
    (``4, 8, 16, ...``) and within each length a bounded number of
    pseudorandomly-ordered assignments is tried; at an adequate length a
    random assignment succeeds with high probability, so the expected
    trial count is small.  Any such predetermined rule satisfies Lemma 1.

    The budget is shared across lengths.  Raises
    :class:`SearchBudgetExceeded` if it runs out, and
    :class:`DerandomizationError` if ``max_length`` is exhausted (which,
    for a Las-Vegas algorithm, means the cap was simply too small)."""
    if strategy == "prg":
        return _prg_assignment_search(
            algorithm, graph, node_order, max_length=max_length, budget=budget
        )
    remaining = budget
    empty: dict[Node, str] = {v: "" for v in node_order}
    for target_length in range(1, max_length + 1):
        try:
            found = smallest_successful_extension(
                algorithm,
                graph,
                node_order,
                empty,
                target_length,
                budget=remaining,
                strategy=strategy,
            )
        except SearchBudgetExceeded:
            raise SearchBudgetExceeded(
                f"assignment search exceeded its budget of {budget} trials "
                f"at length {target_length}"
            ) from None
        space = 1 << (len(list(node_order)) * target_length)
        remaining -= min(space, remaining)
        if found is not None:
            return found
        if remaining <= 0:
            raise SearchBudgetExceeded(
                f"assignment search exceeded its budget of {budget} trials "
                f"after length {target_length}"
            )
    raise DerandomizationError(
        f"no successful assignment up to length {max_length}; "
        "raise max_length (Las-Vegas success has probability 1, so some "
        "finite length works)"
    )


def _prg_assignment_search(
    algorithm: AnonymousAlgorithm,
    graph: LabeledGraph,
    node_order: Sequence[Node],
    max_length: int,
    budget: int,
    trials_per_length: int = 128,
) -> Assignment:
    empty: dict[Node, str] = {v: "" for v in node_order}
    tried = 0
    target_length = 4
    while target_length <= max_length:
        for assignment in enumerate_extensions(
            empty,
            node_order,
            target_length,
            strategy="prg",
            prg_seed=target_length,
            limit=trials_per_length,
        ):
            if tried >= budget:
                raise SearchBudgetExceeded(
                    f"prg assignment search exceeded its budget of {budget} trials"
                )
            tried += 1
            if execute(algorithm, graph, assignment=assignment).successful:
                return assignment
        target_length *= 2
    raise DerandomizationError(
        f"prg search found no successful assignment up to length {max_length}; "
        "raise max_length"
    )
