"""A_∞ — Theorem 2, exact on finite graphs.

The infinity model hands node ``v`` its depth-infinity view; ``A_∞``
(i) reconstructs the infinite view graph ``I_∞`` from it, (ii) selects
the smallest successful simulation of the randomized algorithm ``A_R``
on ``J = (V_∞, E_∞, i_∞)``, and (iii) outputs what ``ṽ`` outputs there.
On a finite graph the finite view graph stands in for ``I_∞``
(Corollary 2), making every step computable — no approximation is
involved.

The lifting lemma is what makes step (iii) sound: ``J ⪯ I`` with the
same inputs, so ``J`` is itself an instance of Π (this is where the
GRAN *decider* hypothesis earns its keep — a problem whose instance set
is not closed under factors admits no anonymous decider), and the lifted
simulation is a legal execution of ``A_R`` on ``I``.  The solver checks
both facts at runtime and raises if the input breaks them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import DerandomizationError
from repro.factor.quotient import QuotientResult, finite_view_graph
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.problems.problem import DistributedProblem
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import execute
from repro.core.assignment_search import smallest_successful_assignment
from repro.core.orders import canonical_node_order
from repro.graphs.coloring import is_two_hop_coloring


def _require_two_hop_colored(instance: LabeledGraph, color_layer: str) -> None:
    """Fail fast when the claimed 2-hop coloring layer is invalid — the
    derandomization machinery is undefined outside Π^c instances."""
    if not is_two_hop_coloring(instance, instance.layer(color_layer)):
        raise DerandomizationError(
            f"layer {color_layer!r} is not a 2-hop coloring; the instance "
            "is not a member of the 2-hop colored variant"
        )


@dataclass
class DerandomizationResult:
    """Outcome of a derandomized solve.

    Attributes
    ----------
    outputs:
        The deterministic output labeling for the input instance.
    quotient:
        The finite view graph machinery used (quotient graph + ``f_∞``).
    assignment:
        The selected bit assignment on the quotient (the simulation all
        nodes agreed on).
    simulation_rounds:
        Rounds of the selected successful simulation.
    """

    outputs: dict[Node, Any]
    quotient: QuotientResult
    assignment: dict[Node, str]
    simulation_rounds: int


class AInfinitySolver:
    """Solves Π^c deterministically in the (finite-graph) infinity model.

    Parameters
    ----------
    problem:
        The underlying problem Π (not Π^c) — used to sanity-check that
        the quotient is an instance, as the lifting lemma promises.
    algorithm:
        A randomized anonymous algorithm solving Π.
    max_assignment_length / search_budget / strategy:
        Passed to the assignment search (see
        :mod:`repro.core.assignment_search`).
    """

    def __init__(
        self,
        problem: DistributedProblem,
        algorithm: AnonymousAlgorithm,
        max_assignment_length: int = 64,
        search_budget: int = 1_000_000,
        strategy: str = "lexicographic",
        input_layer: str = "input",
        color_layer: str = "color",
    ) -> None:
        self.problem = problem
        self.algorithm = algorithm
        self.max_assignment_length = max_assignment_length
        self.search_budget = search_budget
        self.strategy = strategy
        self.input_layer = input_layer
        self.color_layer = color_layer

    # ------------------------------------------------------------------

    def solve(self, instance: LabeledGraph) -> DerandomizationResult:
        """Solve the Π^c instance ``instance`` (layers: input + 2-hop color).

        Deterministic: equal instances produce equal outputs.
        """
        for layer in (self.input_layer, self.color_layer):
            if not instance.has_layer(layer):
                raise DerandomizationError(
                    f"instance is missing the {layer!r} layer; A_infinity "
                    "solves the 2-hop colored variant"
                )
        _require_two_hop_colored(instance, self.color_layer)
        quotient = finite_view_graph(instance)
        simulation_graph = quotient.graph.with_only_layers([self.input_layer])

        if not self.problem.is_instance(simulation_graph):
            raise DerandomizationError(
                f"the view quotient is not an instance of {self.problem.name}; "
                "the problem's instance set is not factor-closed, so it is "
                "not genuinely solvable (GRAN) and Theorem 1 does not apply"
            )

        node_order = canonical_node_order(quotient.graph)
        assignment = smallest_successful_assignment(
            self.algorithm,
            simulation_graph,
            node_order,
            max_length=self.max_assignment_length,
            budget=self.search_budget,
            strategy=self.strategy,
        )
        simulation = execute(
            self.algorithm, simulation_graph, assignment=assignment
        )
        if not simulation.successful:
            raise DerandomizationError(
                "selected assignment no longer induces a successful "
                "simulation; the algorithm is not replay-deterministic"
            )
        outputs = {
            v: simulation.outputs[quotient.map(v)] for v in instance.nodes
        }
        return DerandomizationResult(
            outputs=outputs,
            quotient=quotient,
            assignment=assignment,
            simulation_rounds=simulation.rounds,
        )
