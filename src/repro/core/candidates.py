"""Candidate enumeration for Update-Graph (Figure 3, conditions C1-C3).

A *candidate for phase p* (as seen from a node with view
``L = L_p(v, I^p)``) is a labeled graph ``Ĝ = (V̂, Ê, î, ĉ, b̂)`` with

* C1: ``|V̂| <= p``;
* C2: some node ``v̂ ∈ V̂`` has ``L_p(v̂, Ĝ) = L``;
* C3: ``(V̂, Ê, î, ĉ)`` is an instance of Π^c.

Two observations make brute-force enumeration sound and finite:

* a candidate is connected with ``|V̂| <= p`` nodes, so its diameter is
  below ``p`` and *every* candidate label occurs as a mark somewhere in
  ``L`` — the label alphabet is the observed mark set;
* the quotient of a candidate is itself a candidate with the same finite
  view graph (Fact 1 + factor-closure of Π^c), so the minimum of the set
  F is always attained by a candidate that is its own finite view graph.
  Capping the enumerated node count at ``max_nodes`` therefore preserves
  the selected minimum whenever the true selection has at most
  ``max_nodes`` nodes — which Lemma 7 guarantees from phase ``2n`` on
  for any cap ``>= n``.  (Early phases may select differently under a
  cap; Lemma 9 shows A_*'s correctness never depends on those transient
  selections.)

Enumeration is *exponential* — that is the paper's construction, not an
implementation accident — so everything is budget-guarded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro.exceptions import CandidateError, FactorError, GraphError
from repro.factor.quotient import finite_view_graph
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.problems.problem import DistributedProblem
from repro.views.local_views import all_views
from repro.views.view_tree import ViewTree
from repro.core.orders import finite_view_graph_sort_key


@dataclass
class Candidate:
    """One candidate graph with its finite view graph and anchor node.

    ``anchor`` is the node ``v̂`` promised by C2; ``anchor_class`` is the
    corresponding node ``v̊`` of the finite view graph.
    """

    graph: LabeledGraph
    finite_view: LabeledGraph
    anchor: Node
    anchor_class: int
    sort_key: tuple[int, str]


def observed_marks(view: ViewTree) -> list[tuple]:
    """The distinct marks appearing anywhere in a view, in a canonical
    order — the complete label alphabet of any candidate."""
    marks: dict[str, tuple] = {}
    for subtree in view.subtrees():
        marks.setdefault(repr(subtree.mark), subtree.mark)
    return [marks[key] for key in sorted(marks)]


def _connected_edge_sets(k: int) -> Iterator[list[tuple[int, int]]]:
    """All connected simple graphs on nodes ``0..k-1`` (as edge lists),
    enumerated over subsets of the complete graph's edges."""
    pairs = list(itertools.combinations(range(k), 2))
    if k == 1:
        yield []
        return
    for bits in range(1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if bits >> i & 1]
        if len(edges) < k - 1:
            continue
        if _edges_connected(k, edges):
            yield edges


def _edges_connected(k: int, edges: Sequence[tuple[int, int]]) -> bool:
    adjacency: dict[int, list[int]] = {v: [] for v in range(k)}
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    seen = {0}
    stack = [0]
    while stack:
        current = stack.pop()
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == k


def enumerate_candidates(
    view: ViewTree,
    phase: int,
    problem_c: DistributedProblem,
    layer_names: Sequence[str],
    max_nodes: int = 4,
    budget: int = 200_000,
) -> list[Candidate]:
    """All candidates for ``phase`` matching ``view``, one representative
    per distinct finite view graph, sorted by the finite-view-graph order.

    ``layer_names`` says how to split a composed mark back into layers
    (e.g. ``("input", "color", "bits")``).  ``problem_c`` checks C3 on the
    graph without its last (bits) layer.  ``max_nodes`` caps C1 (see the
    module docstring for why that is sound); ``budget`` caps the number
    of (graph, labeling) pairs examined and raises
    :class:`CandidateError` when exceeded.
    """
    marks = observed_marks(view)
    cap = min(phase, max_nodes)
    examined = 0
    by_encoding: dict[tuple[int, str], Candidate] = {}
    for k in range(1, cap + 1):
        for edges in _connected_edge_sets(k):
            for labeling in itertools.product(marks, repeat=k):
                examined += 1
                if examined > budget:
                    raise CandidateError(
                        "candidate enumeration exceeded its budget of "
                        f"{budget} at phase {phase} (k={k})"
                    )
                candidate = _try_candidate(
                    edges, k, labeling, view, phase, problem_c, layer_names
                )
                if candidate is not None and candidate.sort_key not in by_encoding:
                    by_encoding[candidate.sort_key] = candidate
    return [by_encoding[key] for key in sorted(by_encoding)]


def _try_candidate(
    edges: list[tuple[int, int]],
    k: int,
    labeling: tuple[tuple, ...],
    view: ViewTree,
    phase: int,
    problem_c: DistributedProblem,
    layer_names: Sequence[str],
) -> Candidate | None:
    # Cheap pre-filters before paying for graph + view construction:
    # C2's anchor must reproduce the view's root, so some node must carry
    # the root's mark with the root's degree; and every mark must come
    # from the observed alphabet with a matching degree *somewhere* in
    # the view (checked by the caller's alphabet construction).
    degree_of = {node_id: 0 for node_id in range(k)}
    for u, v in edges:
        degree_of[u] += 1
        degree_of[v] += 1
    root_mark = view.mark
    root_degree = len(view.children)
    if not any(
        labeling[node_id] == root_mark and degree_of[node_id] == root_degree
        for node_id in range(k)
    ):
        return None

    layers: dict[str, dict[int, object]] = {name: {} for name in layer_names}
    for node_id, mark in enumerate(labeling):
        if not isinstance(mark, tuple) or len(mark) != len(layer_names):
            return None
        for name, value in zip(layer_names, mark):
            layers[name][node_id] = value
    try:
        graph = LabeledGraph(edges, nodes=range(k), layers=layers)
    except GraphError:
        return None

    # C2: find an anchor whose depth-`phase` view equals the observed one.
    views = all_views(graph, phase)
    anchor: int | None = None
    for node_id in graph.nodes:
        if views[node_id] is view:
            anchor = node_id
            break
    if anchor is None:
        return None

    # C3: drop the trailing bits layer and ask Π^c.
    instance_part = graph.with_only_layers(list(layer_names[:-1]))
    if not problem_c.is_instance(instance_part):
        return None

    try:
        quotient = finite_view_graph(graph)
    except FactorError:
        return None
    return Candidate(
        graph=graph,
        finite_view=quotient.graph,
        anchor=anchor,
        anchor_class=quotient.map(anchor),
        sort_key=finite_view_graph_sort_key(quotient.graph),
    )
