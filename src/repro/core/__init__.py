"""★ The paper's contribution: derandomization via 2-hop coloring.

* :mod:`repro.core.orders` — the predetermined total orders (on views,
  bit assignments, and finite view graphs) that let all nodes agree on
  one simulation without communication (Lemma 1).
* :mod:`repro.core.assignment_search` — smallest-successful-assignment
  search in the assignment order (Section 2.2 / Update-Bits).
* :mod:`repro.core.infinity` — A_∞ (Theorem 2), exact on finite graphs
  via the finite view graph.
* :mod:`repro.core.candidates` + :mod:`repro.core.a_star` — the faithful
  A_* of Figure 3 (Update-Graph / Update-Output / Update-Bits phases).
* :mod:`repro.core.practical` — the Lemma-7 shortcut derandomizer that
  skips candidate enumeration but keeps per-node view-only quotient
  reconstruction.
* :mod:`repro.core.derandomize` — the end-to-end pipeline of the paper's
  headline: a generic randomized 2-hop coloring stage followed by a
  problem-specific deterministic stage.
"""

from repro.core.orders import (
    assignment_sort_key,
    finite_view_graph_sort_key,
    canonical_node_order,
)
from repro.core.assignment_search import (
    SearchBudgetExceeded,
    enumerate_extensions,
    smallest_successful_assignment,
    smallest_successful_extension,
)
from repro.core.infinity import AInfinitySolver, DerandomizationResult
from repro.core.candidates import Candidate, enumerate_candidates
from repro.core.a_star import AStarSolver, AStarDiagnostics
from repro.core.practical import PracticalDerandomizer, quotient_from_view
from repro.core.derandomize import PipelineResult, derandomize_pipeline
from repro.core.verification import (
    CheckOutcome,
    ConformanceReport,
    check_gran_bundle,
)

__all__ = [
    "assignment_sort_key",
    "finite_view_graph_sort_key",
    "canonical_node_order",
    "SearchBudgetExceeded",
    "enumerate_extensions",
    "smallest_successful_assignment",
    "smallest_successful_extension",
    "AInfinitySolver",
    "DerandomizationResult",
    "Candidate",
    "enumerate_candidates",
    "AStarSolver",
    "AStarDiagnostics",
    "PracticalDerandomizer",
    "quotient_from_view",
    "PipelineResult",
    "derandomize_pipeline",
    "CheckOutcome",
    "ConformanceReport",
    "check_gran_bundle",
]
