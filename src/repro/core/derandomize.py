"""The end-to-end pipeline of the paper's headline result.

"The execution of every randomized anonymous algorithm can be decoupled
into a generic preprocessing randomized stage that computes a 2-hop
coloring, followed by a problem-specific deterministic stage."

:func:`derandomize_pipeline` is that sentence as code:

1. **Randomized stage** (problem-independent): run the anonymous
   randomized 2-hop coloring algorithm; attach its output as the
   ``color`` layer.
2. **Deterministic stage** (problem-specific): solve Π^c with the
   derandomizer (practical by default; the faithful A_* can be swapped
   in for small instances).
3. Validate the final outputs against the problem definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import ProblemError
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.graphs.coloring import apply_two_hop_coloring
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.problems.gran import GranBundle
from repro.runtime.engine import execute
from repro.core.practical import PracticalDerandomizer, PracticalResult


@dataclass
class PipelineResult:
    """Outcome and accounting of the two-stage pipeline."""

    outputs: dict[Node, Any]
    coloring: dict[Node, str]
    stage1_rounds: int
    stage1_bits: int
    stage2: PracticalResult

    @property
    def quotient_size(self) -> int:
        return self.stage2.quotient.graph.num_nodes


def derandomize_pipeline(
    bundle: GranBundle,
    instance: LabeledGraph,
    seed: int,
    max_rounds: int = 10_000,
    strategy: str = "lexicographic",
    search_budget: int = 1_000_000,
    max_assignment_length: int = 64,
) -> PipelineResult:
    """Solve a Π instance by 2-hop-coloring preprocessing + deterministic
    derandomization (Theorem 1's decoupling).

    ``seed`` drives only stage 1 — the single place randomness enters.
    The returned outputs are validated against ``bundle.problem``; an
    invalid labeling raises :class:`ProblemError` (it would falsify the
    theorem, so it indicates a bug).
    """
    if not bundle.problem.is_instance(instance):
        raise ProblemError(
            f"{instance!r} is not an instance of {bundle.problem.name}"
        )

    # Stage 1: the generic randomized preprocessing.
    coloring_run = execute(
        TwoHopColoringAlgorithm(),
        instance,
        seed=seed,
        max_rounds=max_rounds,
        require_decided=True,
    )
    coloring = coloring_run.outputs
    colored = apply_two_hop_coloring(instance, coloring)

    # Stage 2: the problem-specific deterministic stage.
    solver = PracticalDerandomizer(
        bundle.problem,
        bundle.solver,
        strategy=strategy,
        search_budget=search_budget,
        max_assignment_length=max_assignment_length,
    )
    stage2 = solver.solve(colored)

    if not bundle.problem.is_valid_output(instance, stage2.outputs):
        raise ProblemError(
            f"pipeline produced an invalid {bundle.problem.name} output: "
            f"{stage2.outputs!r}"
        )

    stage1_bits = instance.num_nodes * coloring_run.rounds
    return PipelineResult(
        outputs=stage2.outputs,
        coloring=dict(coloring),
        stage1_rounds=coloring_run.rounds,
        stage1_bits=stage1_bits,
        stage2=stage2,
    )
