"""A_* — the deterministic algorithm of Figure 3, faithfully.

Phases ``p = 1, 2, ...``; in phase ``p`` every node ``v`` runs, *using
only its own view* ``L_p(v, I^p)``:

* **Update-Graph** — enumerate the candidates for phase ``p``, pick the
  smallest finite view graph ``Ĝ_*`` in the set F, and locate its own
  alias ``v̊`` in it;
* **Update-Output** — simulate ``A_R`` on ``(V̂_*, Ê_*, î_*)`` induced by
  the recorded bit labeling ``b̂_*``; on success adopt ``v̊``'s output;
* **Update-Bits** — find the smallest successful ``p``-extension of
  ``b̂_*`` and adopt ``v̊``'s bits as the node's label for phase ``p+1``.

The implementation runs at the *view level*: each phase computes the
views of ``I^p`` (input + color + current bits labeling) and evaluates
the three sub-procedures once per **distinct** view — nodes with equal
views provably compute identical results, so this changes nothing while
making the phase cost proportional to the quotient size.  A
message-passing realization would spend ``p`` rounds of flooding per
phase to gather ``L_p``; the diagnostics account those rounds.

Faithfulness caveats (see DESIGN.md): candidate enumeration is capped at
``max_candidate_nodes`` (sound — Lemma 7/9, cap must be ``>= n``), and
C3 is checked with the problem's ground-truth ``is_instance`` rather
than by simulating the randomized decider to exhaustion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import DerandomizationError
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.problems.problem import DistributedProblem, TwoHopColoredVariant
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import execute
from repro.views.local_views import all_views
from repro.views.view_tree import ViewTree
from repro.core.assignment_search import smallest_successful_extension
from repro.core.candidates import Candidate, enumerate_candidates
from repro.core.orders import canonical_node_order


@dataclass
class AStarDiagnostics:
    """Per-run accounting for the faithful A_*."""

    phases: int = 0
    message_rounds: int = 0  # sum of p over executed phases (flooding cost)
    candidates_enumerated: int = 0
    simulations_run: int = 0
    phase_selections: list[tuple[int, int, str]] = field(default_factory=list)
    # (phase, |V̂_*| of the selection, its encoding) — empty-F phases absent


@dataclass
class _PhaseOutcome:
    """What one distinct view computes in one phase."""

    output: Any | None
    new_bits: str | None
    selection: Candidate | None


class AStarSolver:
    """The deterministic anonymous algorithm A_* solving Π^c (Theorem 1)."""

    def __init__(
        self,
        problem: DistributedProblem,
        algorithm: AnonymousAlgorithm,
        max_candidate_nodes: int = 3,
        candidate_budget: int = 200_000,
        extension_budget: int = 200_000,
        input_layer: str = "input",
        color_layer: str = "color",
        bits_layer: str = "bits",
    ) -> None:
        self.problem = problem
        self.problem_c = TwoHopColoredVariant(problem, color_layer=color_layer)
        self.algorithm = algorithm
        self.max_candidate_nodes = max_candidate_nodes
        self.candidate_budget = candidate_budget
        self.extension_budget = extension_budget
        self.input_layer = input_layer
        self.color_layer = color_layer
        self.bits_layer = bits_layer

    # ------------------------------------------------------------------

    def solve(
        self, instance: LabeledGraph, max_phases: int = 32
    ) -> tuple[dict[Node, Any], AStarDiagnostics]:
        """Run A_* on a Π^c instance until every node holds an output.

        Returns the (deterministic) output labeling and diagnostics.
        Raises :class:`DerandomizationError` if ``max_phases`` is reached
        first — for budget-capped runs, not a termination bound (the
        theorem guarantees some finite phase suffices).
        """
        for layer in (self.input_layer, self.color_layer):
            if not instance.has_layer(layer):
                raise DerandomizationError(
                    f"instance is missing the {layer!r} layer"
                )
        from repro.core.infinity import _require_two_hop_colored

        _require_two_hop_colored(instance, self.color_layer)
        diagnostics = AStarDiagnostics()
        bits: dict[Node, str] = {v: "" for v in instance.nodes}
        outputs: dict[Node, Any] = {}
        layer_names = (self.input_layer, self.color_layer, self.bits_layer)

        for phase in range(1, max_phases + 1):
            diagnostics.phases = phase
            diagnostics.message_rounds += phase
            current = instance.with_layer(self.bits_layer, bits)
            current = current.with_only_layers(list(layer_names))
            views = all_views(current, phase)

            outcome_by_view: dict[int, _PhaseOutcome] = {}
            for v in current.nodes:
                view = views[v]
                if id(view) not in outcome_by_view:
                    outcome_by_view[id(view)] = self._run_phase(
                        view, phase, layer_names, diagnostics
                    )
                outcome = outcome_by_view[id(view)]
                if outcome.output is not None:
                    if v in outputs and outputs[v] != outcome.output:
                        raise DerandomizationError(
                            f"node {v!r} would change its irrevocable output "
                            f"from {outputs[v]!r} to {outcome.output!r} in "
                            f"phase {phase}"
                        )
                    outputs[v] = outcome.output
                if outcome.new_bits is not None:
                    bits[v] = outcome.new_bits

            if len(outputs) == current.num_nodes:
                return outputs, diagnostics

        raise DerandomizationError(
            f"A_* did not decide every node within {max_phases} phases "
            f"({len(outputs)}/{instance.num_nodes} decided)"
        )

    # ------------------------------------------------------------------

    def _run_phase(
        self,
        view: ViewTree,
        phase: int,
        layer_names: tuple[str, str, str],
        diagnostics: AStarDiagnostics,
    ) -> _PhaseOutcome:
        # Update-Graph ------------------------------------------------
        candidates = enumerate_candidates(
            view,
            phase,
            self.problem_c,
            layer_names,
            max_nodes=self.max_candidate_nodes,
            budget=self.candidate_budget,
        )
        diagnostics.candidates_enumerated += len(candidates)
        if not candidates:
            return _PhaseOutcome(output=None, new_bits=None, selection=None)
        selection = candidates[0]  # smallest finite view graph in F
        diagnostics.phase_selections.append(
            (phase, selection.finite_view.num_nodes, selection.sort_key[1])
        )
        fvg = selection.finite_view
        simulation_graph = fvg.with_only_layers([self.input_layer])
        recorded_bits = fvg.layer(self.bits_layer)
        anchor_class = selection.anchor_class

        # Update-Output -----------------------------------------------
        output: Any | None = None
        diagnostics.simulations_run += 1
        simulation = execute(
            self.algorithm, simulation_graph, assignment=recorded_bits
        )
        if simulation.successful:
            output = simulation.outputs[anchor_class]

        # Update-Bits -------------------------------------------------
        new_bits: str | None = None
        node_order = canonical_node_order(fvg)
        extension = smallest_successful_extension(
            self.algorithm,
            simulation_graph,
            node_order,
            recorded_bits,
            target_length=phase,
            budget=self.extension_budget,
        )
        if extension is not None:
            new_bits = extension[anchor_class]

        return _PhaseOutcome(output=output, new_bits=new_bits, selection=selection)
