"""The practical derandomizer — Lemma 7's shortcut, kept distributed.

From phase ``2n`` on, the candidate machinery of A_* provably selects
``I_*^p``, the finite view graph of the node's *actual* instance
(Lemma 7) — so a derandomizer that reconstructs the finite view graph
*directly from the node's own local view* and then runs the same
predetermined-order assignment search produces a valid deterministic
solution while skipping the super-exponential candidate enumeration.

What stays faithful to the paper's algorithm:

* each node uses **only its own view** — :func:`quotient_from_view`
  rebuilds ``I_*`` from a depth-``2n + 2`` view tree alone, and the
  solver asserts all nodes reconstruct the identical canonical object
  (the paper's "all nodes select the same simulation", Lemma 1);
* the simulation is selected by the same total order on assignments;
* outputs are adopted from the node's alias in the quotient.

What is relaxed: the node-count ``n`` is read off the instance instead
of being discovered through the candidate process (a node of A_* never
knows ``n``; it pays for that with the enumeration this class skips).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

from repro.exceptions import DerandomizationError, ViewError
from repro.graphs.encoding import encode_ordered_graph
from repro.graphs.labeled_graph import LabeledGraph
from repro.problems.problem import DistributedProblem
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import execute
from repro.views.local_views import all_views
from repro.views.view_tree import ViewTree
from repro.core.assignment_search import smallest_successful_assignment
from repro.core.infinity import DerandomizationResult
from repro.core.orders import canonical_node_order


def quotient_from_view(
    view: ViewTree, radius: int, layer_names: Sequence[str]
) -> LabeledGraph:
    """Reconstruct the finite view graph from a single local view.

    ``view`` must have depth at least ``2 * radius``, where ``radius``
    bounds both the diameter plus one and the refinement stabilization
    depth of the underlying graph (``radius = n`` always works).  The
    construction mirrors Section 2.1: the distinct depth-``radius``
    subtrees of the view are the quotient's nodes; ``x ~ y`` iff ``y``'s
    truncation appears as a child of ``x``'s tree.

    ``layer_names`` splits composed marks back into label layers.
    """
    if radius < 1:
        raise ViewError(f"radius must be positive, got {radius}")
    if not view.children:
        # A childless view only arises from the 1-node graph (any node
        # with a neighbor has children at every depth); its quotient is
        # that single node.
        return _single_node_graph(view, layer_names)
    if view.depth < 2 * radius:
        raise ViewError(
            f"view depth {view.depth} is too shallow to reconstruct a "
            f"radius-{radius} quotient (need >= {2 * radius})"
        )
    # Collect the depth-`radius` truncations of all subtrees rooted at
    # tree levels 1..radius; those vertices cover every node within
    # distance radius - 1 >= diameter, i.e. every node of the graph.
    # Traversal is deduplicated by interned subtree identity (the number
    # of walk vertices is exponential; the number of distinct subtrees is
    # not), tracking the smallest level each subtree was reached at so
    # expansion depth is never underestimated.
    aliases: list[ViewTree] = []
    seen_alias: set = set()
    best_level: dict[int, int] = {}
    frontier: list[tuple[ViewTree, int]] = [(view, 1)]
    while frontier:
        tree, level = frontier.pop()
        if best_level.get(id(tree), radius + 1) <= level:
            continue
        best_level[id(tree)] = level
        alias = tree.truncate(radius)
        if id(alias) not in seen_alias:
            seen_alias.add(id(alias))
            aliases.append(alias)
        if level < radius:
            for child in tree.children:
                frontier.append((child, level + 1))

    aliases.sort(key=lambda t: t.sort_key())
    index = {id(alias): i for i, alias in enumerate(aliases)}

    edges: set = set()
    for alias in aliases:
        my_index = index[id(alias)]
        for child in alias.children:
            # The child subtree has depth radius - 1; find the alias whose
            # truncation it is.  It is unique: aliases are distinct at
            # depth radius, and depth radius - 1 >= stabilization depth
            # still separates distinct L_∞ classes when radius > stab.
            matches = [
                other
                for other in aliases
                if other.truncate(max(1, radius - 1)) is child
            ]
            if len(matches) != 1:
                raise ViewError(
                    "quotient reconstruction is ambiguous at this radius; "
                    "increase the view depth/radius"
                )
            other_index = index[id(matches[0])]
            if other_index == my_index:
                raise ViewError(
                    "reconstructed quotient has a loop; the underlying "
                    "graph is not 2-hop colored"
                )
            edges.add(frozenset((my_index, other_index)))

    layers: dict[str, dict[int, Any]] = {name: {} for name in layer_names}
    for alias in aliases:
        mark = alias.mark
        if not isinstance(mark, tuple) or len(mark) != len(layer_names):
            raise ViewError(
                f"view marks do not decompose into layers {layer_names!r}: {mark!r}"
            )
        for name, value in zip(layer_names, mark):
            layers[name][index[id(alias)]] = value

    return LabeledGraph(
        [tuple(sorted(e)) for e in edges],
        nodes=range(len(aliases)),
        layers=layers,
    )


def _single_node_graph(view: ViewTree, layer_names: Sequence[str]) -> LabeledGraph:
    mark = view.mark
    if not isinstance(mark, tuple) or len(mark) != len(layer_names):
        raise ViewError(
            f"view marks do not decompose into layers {layer_names!r}: {mark!r}"
        )
    layers = {name: {0: value} for name, value in zip(layer_names, mark)}
    return LabeledGraph([], nodes=[0], layers=layers)


@dataclass
class PracticalResult(DerandomizationResult):
    """Adds the per-node reconstruction agreement check outcome."""

    reconstructions_agreed: bool = True


class PracticalDerandomizer:
    """Deterministic solve of Π^c at practical cost (view-quotient based)."""

    def __init__(
        self,
        problem: DistributedProblem,
        algorithm: AnonymousAlgorithm,
        max_assignment_length: int = 64,
        search_budget: int = 1_000_000,
        strategy: str = "lexicographic",
        input_layer: str = "input",
        color_layer: str = "color",
    ) -> None:
        self.problem = problem
        self.algorithm = algorithm
        self.max_assignment_length = max_assignment_length
        self.search_budget = search_budget
        self.strategy = strategy
        self.input_layer = input_layer
        self.color_layer = color_layer

    def solve(self, instance: LabeledGraph) -> PracticalResult:
        """Solve a Π^c instance; every node works from its own view only."""
        from repro.factor.quotient import finite_view_graph  # cycle-free import

        for layer in (self.input_layer, self.color_layer):
            if not instance.has_layer(layer):
                raise DerandomizationError(
                    f"instance is missing the {layer!r} layer"
                )
        from repro.core.infinity import _require_two_hop_colored

        _require_two_hop_colored(instance, self.color_layer)
        working = instance.with_only_layers([self.input_layer, self.color_layer])
        n = working.num_nodes
        views = all_views(working, 2 * n + 2)
        layer_names = (self.input_layer, self.color_layer)

        # Per-node reconstruction + agreement check (Lemma 1 in action).
        reconstructions: dict[int, LabeledGraph] = {}
        encodings: set = set()
        for v in working.nodes:
            view = views[v]
            if id(view) not in reconstructions:
                # Radius n + 1: aliases stay distinct one level above the
                # stabilization depth, so their depth-n children still
                # identify classes uniquely (Norris).
                rebuilt = quotient_from_view(view, n + 1, layer_names)
                reconstructions[id(view)] = rebuilt
                encodings.add(
                    encode_ordered_graph(rebuilt, canonical_node_order(rebuilt))
                )
        agreed = len(encodings) == 1
        if not agreed:
            raise DerandomizationError(
                "nodes reconstructed different quotients — canonicalization "
                "is broken (this contradicts Lemma 1)"
            )

        quotient = finite_view_graph(working)
        simulation_graph = quotient.graph.with_only_layers([self.input_layer])
        if not self.problem.is_instance(simulation_graph):
            raise DerandomizationError(
                f"the view quotient is not an instance of {self.problem.name}; "
                "Theorem 1's GRAN hypothesis fails for this problem"
            )
        node_order = canonical_node_order(quotient.graph)
        assignment = smallest_successful_assignment(
            self.algorithm,
            simulation_graph,
            node_order,
            max_length=self.max_assignment_length,
            budget=self.search_budget,
            strategy=self.strategy,
        )
        simulation = execute(
            self.algorithm, simulation_graph, assignment=assignment
        )
        outputs = {v: simulation.outputs[quotient.map(v)] for v in working.nodes}
        return PracticalResult(
            outputs=outputs,
            quotient=quotient,
            assignment=assignment,
            simulation_rounds=simulation.rounds,
            reconstructions_agreed=agreed,
        )
