"""Deterministic, replayable fault injection for the unified engine.

The paper's model is perfectly synchronous and reliable; this package
makes the *departures* from that model first-class, so the repro can
measure where the paper's guarantees (Las-Vegas simulations, 2-hop
coloring validity, view/quotient agreement) actually break:

* :class:`FaultPlan` / :class:`FaultSchedule` — declarative fault
  specs whose every decision is SHA-256-derived from the plan seed and
  the fault's coordinates, so a plan is a pure value and any faulty run
  is byte-replayable (:mod:`repro.faults.plan`);
* :class:`FaultyDelivery` / :class:`CrashDiscipline` /
  :class:`CorruptingTape` / :data:`LOST` — decorators applying the
  schedule at the delivery and randomness boundaries
  (:mod:`repro.faults.delivery`);
* :class:`FaultTrace` / :class:`FaultEvent` — the record of every
  injected event (:mod:`repro.faults.trace`);
* :func:`inject_faults` / :func:`execute_with_faults` — ambient and
  one-shot entry points (:mod:`repro.faults.context`,
  :mod:`repro.faults.harness`);
* ``python -m repro.faults.gate`` — the zero-fault differential gate
  and replay-determinism check (``make faults-smoke``).

See ``docs/FAULTS.md`` for the plan schema, the determinism contract
and the replay recipe.
"""

from repro.faults.context import ActiveInjection, current, inject_faults
from repro.faults.delivery import (
    LOST,
    CorruptingTape,
    CrashDiscipline,
    FaultyDelivery,
    LostMessage,
)
from repro.faults.harness import FaultedExecution, execute_with_faults
from repro.faults.plan import FaultPlan, FaultSchedule
from repro.faults.trace import FaultEvent, FaultTrace

__all__ = [
    "LOST",
    "ActiveInjection",
    "CorruptingTape",
    "CrashDiscipline",
    "FaultEvent",
    "FaultPlan",
    "FaultSchedule",
    "FaultTrace",
    "FaultedExecution",
    "FaultyDelivery",
    "LostMessage",
    "current",
    "execute_with_faults",
    "inject_faults",
]
