"""One-shot faulty executions: :func:`execute_with_faults`.

A convenience front end over :func:`repro.faults.context.inject_faults`
for the common case of running a single algorithm under a single plan
and wanting the result and the fault trace together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.faults.context import inject_faults
from repro.faults.plan import FaultPlan
from repro.faults.trace import FaultTrace
from repro.graphs.labeled_graph import LabeledGraph
from repro.runtime.engine import ExecutionResult, execute


@dataclass
class FaultedExecution:
    """An execution result together with the faults it suffered."""

    result: ExecutionResult
    fault_trace: FaultTrace
    plan: FaultPlan

    @property
    def faults_injected(self) -> int:
        return len(self.fault_trace)

    def fault_counts(self) -> dict[str, int]:
        return self.fault_trace.counts()


def execute_with_faults(
    algorithm: Any,
    graph: LabeledGraph,
    plan: FaultPlan,
    **execute_kwargs: Any,
) -> FaultedExecution:
    """Run ``algorithm`` on ``graph`` under ``plan``.

    Accepts every keyword :func:`~repro.runtime.engine.execute` accepts
    (``seed=``, ``assignment=``, ``tapes=``, ``max_rounds=``, ...).
    Raises whatever the execution raises — under aggressive plans that
    includes algorithm-level errors (a node fed ``LOST`` where it
    expected structure), which callers probing for breakage should
    catch; see :func:`repro.analysis.resilience.probe`.
    """
    with inject_faults(plan) as injection:
        result = execute(algorithm, graph, **execute_kwargs)
    return FaultedExecution(
        result=result,
        fault_trace=injection.trace,
        plan=plan,
    )
