"""Zero-fault differential gate: ``python -m repro.faults.gate``.

The fault subsystem's core transparency contract, enforced as an
executable check (wired into CI as ``make faults-smoke``):

1. **Zero-fault identity** — running the *full* experiment registry
   under an ambient empty :class:`~repro.faults.plan.FaultPlan`
   (every delivery wrapped in
   :class:`~repro.faults.delivery.FaultyDelivery`, every tape wrapped
   in :class:`~repro.faults.delivery.CorruptingTape`) produces
   canonical results byte-identical to the bare engine, and injects
   exactly zero fault events.
2. **Faulty replay determinism** — the ``resilience`` experiment
   family, whose experiments run fixed nonzero plans, produces
   canonical results byte-identical across consecutive runs and
   across ``jobs=1`` vs ``jobs=4``.

Exits 0 if both hold, 1 with a diff summary otherwise.
"""

from __future__ import annotations

import json
import sys

from repro.experiments.base import all_experiment_ids, get_spec
from repro.experiments.runner import (
    canonical_results,
    results_payload,
    run_experiments,
)
from repro.faults.context import inject_faults
from repro.faults.plan import FaultPlan


def _canonical_bytes(ids: list[str], *, jobs: int = 1) -> str:
    report = run_experiments(ids, jobs=jobs)
    return json.dumps(canonical_results(results_payload(report)), sort_keys=True)


def _first_divergence(a: str, b: str) -> str:
    """A short context window around the first differing byte."""
    for i, (ca, cb) in enumerate(zip(a, b)):
        if ca != cb:
            lo = max(0, i - 60)
            return f"at byte {i}: ...{a[lo:i + 60]!r} vs ...{b[lo:i + 60]!r}"
    return f"lengths differ: {len(a)} vs {len(b)}"


def main() -> int:
    failures = []
    ids = all_experiment_ids()

    print(f"[gate] zero-fault identity over {len(ids)} experiments ...")
    bare = _canonical_bytes(ids)
    with inject_faults(FaultPlan()) as injection:
        wrapped = _canonical_bytes(ids)
    if bare != wrapped:
        failures.append(
            "zero-fault identity: canonical results diverge under an empty "
            f"FaultPlan ({_first_divergence(bare, wrapped)})"
        )
    if len(injection.trace) != 0:
        failures.append(
            f"zero-fault identity: empty plan injected {len(injection.trace)} "
            f"fault events ({dict(injection.trace.counts())!r})"
        )

    family = [eid for eid in ids if get_spec(eid).family == "resilience"]
    print(f"[gate] faulty replay determinism over {family} ...")
    serial_a = _canonical_bytes(family, jobs=1)
    serial_b = _canonical_bytes(family, jobs=1)
    fanned = _canonical_bytes(family, jobs=4)
    if serial_a != serial_b:
        failures.append(
            "faulty replay: consecutive serial runs diverge "
            f"({_first_divergence(serial_a, serial_b)})"
        )
    if serial_a != fanned:
        failures.append(
            "faulty replay: jobs=1 vs jobs=4 diverge "
            f"({_first_divergence(serial_a, fanned)})"
        )

    if failures:
        for failure in failures:
            print(f"[gate] FAILED: {failure}", file=sys.stderr)
        return 1
    print("[gate] ok: zero-fault runs are byte-identical to the bare engine;")
    print("[gate] ok: nonzero fault plans replay byte-identically (serial and fanned)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
