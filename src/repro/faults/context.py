"""Ambient fault injection: ``with inject_faults(plan): ...``.

Every :func:`~repro.runtime.engine.execute` call that happens inside an
:func:`inject_faults` block runs under the plan: its delivery discipline
is wrapped in :class:`~repro.faults.delivery.FaultyDelivery`, every
node's tape in :class:`~repro.faults.delivery.CorruptingTape`, and a
metrics hook streams the per-execution fault count into
``result.metrics.faults_injected``.  The wrapping is unconditional —
an *empty* plan still routes every payload and every bit through the
decorators, which is exactly what the zero-fault differential gate
(``make faults-smoke``) exploits: transparency of the wrappers is a
tested property, not an assumption.

Contexts nest (the innermost plan wins) and are plain process-local
state: a worker process of the parallel experiment runner does not
inherit the parent's context.  Experiments that want faults construct
plans *inside* their (picklable, top-level) experiment functions — see
:mod:`repro.experiments.resilience`.

Engines constructed directly (``ExecutionEngine(...)`` or the scheduler
shims) bypass the ambient context; wrap their delivery explicitly if
needed.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from repro.faults.delivery import CorruptingTape, FaultyDelivery
from repro.faults.plan import FaultPlan, FaultSchedule
from repro.faults.trace import FaultTrace
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.runtime import engine as _engine
from repro.runtime.engine import DeliveryDiscipline, RoundHook
from repro.runtime.tape import BitSource


class _FaultMetricsHook(RoundHook):
    """Streams the execution's fault-event count into its metrics."""

    def __init__(self, trace: FaultTrace) -> None:
        self._trace = trace

    def on_round(self, engine: Any, new_outputs: Any) -> None:
        engine.metrics.faults_injected = len(self._trace)


class ActiveInjection:
    """One active ``inject_faults`` block.

    ``trace`` accumulates every event injected by every execution in
    the block; :meth:`wrap` gives each execution fresh decorators and a
    child trace (decorators carry per-run round counters, so they are
    never shared between runs).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.schedule = FaultSchedule(plan)
        self.trace = FaultTrace()
        self.execution_traces: list[FaultTrace] = []

    def wrap(
        self,
        delivery: DeliveryDiscipline,
        tapes: Mapping[Node, BitSource],
        graph: LabeledGraph,
        hooks: Sequence[RoundHook],
    ) -> tuple[DeliveryDiscipline, Mapping[Node, BitSource], Sequence[RoundHook]]:
        local = FaultTrace(parent=self.trace)
        self.execution_traces.append(local)
        wrapped_delivery = FaultyDelivery(delivery, self.schedule, trace=local)
        wrapped_tapes = {
            v: CorruptingTape(tape, v, self.schedule, trace=local)
            for v, tape in tapes.items()
        }
        return wrapped_delivery, wrapped_tapes, [*hooks, _FaultMetricsHook(local)]

    @property
    def last_execution_trace(self) -> FaultTrace | None:
        """The trace of the most recently wrapped execution."""
        return self.execution_traces[-1] if self.execution_traces else None


_ACTIVE: list[ActiveInjection] = []


def current() -> ActiveInjection | None:
    """The innermost active injection, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[ActiveInjection]:
    """Run every ``execute()`` call in the block under ``plan``.

    Yields the :class:`ActiveInjection`, whose ``trace`` records every
    injected event across the block's executions.
    """
    injection = ActiveInjection(plan)
    _ACTIVE.append(injection)
    try:
        yield injection
    finally:
        _ACTIVE.remove(injection)


_engine.register_injection_provider(current)
