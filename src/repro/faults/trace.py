"""Fault traces: the record of every injected event.

Every observable perturbation — a dropped payload, a duplicated
broadcast, a permuted port inbox, a node going silent, a flipped tape
bit — is recorded as a :class:`FaultEvent`.  The harness gives each
execution its own :class:`FaultTrace` (chained to a per-context parent
trace), so both "what happened to this run" and "what happened under
this ``inject_faults`` block" are answerable, and the per-execution
event count lands in :class:`~repro.runtime.engine.ExecutionMetrics`
as ``faults_injected``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

KINDS = ("drop", "duplicate", "reorder", "crash", "corrupt")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.

    ``round`` is the 1-based execution round for message-level faults,
    and the round of first silence for ``crash`` events.  A tape does
    not know the engine's round counter, so ``corrupt`` events carry
    ``round=0`` and record the node's absolute bit index in ``detail``
    instead.
    """

    kind: str
    round: int
    node: Any
    detail: tuple[Any, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "round": self.round,
            "node": self.node if isinstance(self.node, (int, str)) else repr(self.node),
            "detail": [
                item if isinstance(item, (int, str, float)) else repr(item)
                for item in self.detail
            ],
        }


@dataclass
class FaultTrace:
    """An append-only log of injected faults.

    ``parent`` chains a per-execution trace to the surrounding
    injection context's trace: recording into the child also records
    into the parent, so the context sees the union of all its runs.
    """

    events: list[FaultEvent] = field(default_factory=list)
    parent: "FaultTrace" | None = None

    def record(self, event: FaultEvent) -> None:
        self.events.append(event)
        if self.parent is not None:
            self.parent.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def counts(self) -> dict[str, int]:
        """Event count per kind (only kinds that occurred appear)."""
        totals: dict[str, int] = {}
        for event in self.events:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return totals

    def of_kind(self, kind: str) -> list[FaultEvent]:
        return [event for event in self.events if event.kind == kind]

    def as_dict(self, max_events: int | None = None) -> dict[str, Any]:
        """JSON-safe summary: totals per kind plus (optionally capped)
        individual events, in injection order."""
        events = self.events if max_events is None else self.events[:max_events]
        return {
            "total": len(self.events),
            "by_kind": {kind: n for kind, n in sorted(self.counts().items())},
            "events": [event.as_dict() for event in events],
            "truncated": max_events is not None and len(self.events) > max_events,
        }
