"""Fault plans: declarative, seeded, byte-replayable fault specs.

A :class:`FaultPlan` is a *pure value* describing which faults a run
should suffer: message drop/duplication rates, within-inbox reordering
for the port model, crash-stop nodes, and tape bit corruption.  It
contains no mutable state and no RNG object — every per-round,
per-edge decision is derived on demand by :class:`FaultSchedule` from a
SHA-256 hash of ``(plan_seed, kind, round, node, ...)``, exactly like
the experiment runner's :func:`~repro.experiments.runner.derive_seed`.
Two consequences:

* **Replayability** — the same plan applied to the same execution
  injects the same faults, bit for bit, in any process, on any worker,
  in any schedule order.
* **Locality** — whether the payload on edge ``u -> v`` in round ``r``
  is dropped depends only on the plan and ``(r, u, v)``, never on what
  happened in earlier rounds or on other edges.

See ``docs/FAULTS.md`` for the full determinism contract.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import FaultInjectionError

_RATE_FIELDS = ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate")


def _node_key(node: Any) -> str:
    """A deterministic string identity for a node (ints, strings and
    tuples — everything the graph builders produce — repr stably)."""
    return repr(node)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative fault specification; hashable, picklable, comparable.

    Attributes
    ----------
    plan_seed:
        Seed mixed into every fault decision.  Two plans that differ
        only in ``plan_seed`` inject statistically independent faults.
    drop_rate:
        Probability that the payload on a directed edge ``u -> v`` is
        lost in a given round (both delivery disciplines).
    duplicate_rate:
        Probability that a surviving broadcast payload is delivered
        twice (the anonymous multiset gains a copy).  Ignored by the
        port model, whose inbox is a fixed-arity tuple.
    reorder_rate:
        Probability that a node's port-indexed inbox is permuted in a
        given round (port model only; the broadcast multiset is sorted,
        so reordering it is unobservable by construction).
    corrupt_rate:
        Probability that any single tape bit a node draws is flipped.
    crashes:
        ``((node, round), ...)`` crash-stop schedule: from ``round``
        (1-based, inclusive) onward the node neither sends nor receives
        — every payload from or to it is silenced.
    first_round / last_round:
        The round window (1-based, inclusive) in which the *rate-based*
        faults apply; ``last_round=None`` means unbounded.  Crashes
        carry their own rounds and ignore the window.
    """

    plan_seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    crashes: tuple[tuple[Any, int], ...] = ()
    first_round: int = 1
    last_round: int | None = None

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"{name} must lie in [0, 1], got {rate!r}"
                )
        object.__setattr__(self, "crashes", tuple(
            (node, int(round_)) for node, round_ in self.crashes
        ))
        for node, crash_round in self.crashes:
            if crash_round < 1:
                raise FaultInjectionError(
                    f"crash round for node {node!r} must be >= 1 "
                    f"(rounds are 1-based), got {crash_round}"
                )
        if self.first_round < 1:
            raise FaultInjectionError(
                f"first_round must be >= 1, got {self.first_round}"
            )
        if self.last_round is not None and self.last_round < self.first_round:
            raise FaultInjectionError(
                f"last_round {self.last_round} precedes first_round "
                f"{self.first_round}"
            )

    @property
    def is_empty(self) -> bool:
        """Whether this plan injects nothing at all."""
        return (
            all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)
            and not self.crashes
        )

    def crash_round(self, node: Any) -> int | None:
        """The round ``node`` crash-stops in, or ``None``."""
        for crashed, round_ in self.crashes:
            if crashed == node:
                return round_
        return None

    def as_dict(self) -> dict[str, Any]:
        """A JSON-safe projection (tuple nodes become lists)."""
        def jsonify_node(node: Any) -> Any:
            return list(node) if isinstance(node, tuple) else node

        return {
            "plan_seed": self.plan_seed,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "reorder_rate": self.reorder_rate,
            "corrupt_rate": self.corrupt_rate,
            "crashes": [[jsonify_node(v), r] for v, r in self.crashes],
            "first_round": self.first_round,
            "last_round": self.last_round,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`as_dict` (list nodes become tuples again)."""
        def nodeify(node: Any) -> Any:
            return tuple(node) if isinstance(node, list) else node

        data = dict(payload)
        data["crashes"] = tuple(
            (nodeify(v), r) for v, r in data.get("crashes", ())
        )
        return cls(**data)


class FaultSchedule:
    """Derives every concrete fault decision of a :class:`FaultPlan`.

    Each decision hashes ``(plan_seed, kind, *coordinates)`` with
    SHA-256 and compares the leading 64 bits, scaled to ``[0, 1)``,
    against the relevant rate.  The schedule is therefore stateless:
    any decision can be asked for in any order, any number of times,
    and always answers the same.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._crash_rounds = {node: r for node, r in plan.crashes}

    def _fraction(self, kind: str, *coords: Any) -> float:
        key = "\x1f".join([str(self.plan.plan_seed), kind, *map(str, coords)])
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def in_window(self, round_number: int) -> bool:
        if round_number < self.plan.first_round:
            return False
        last = self.plan.last_round
        return last is None or round_number <= last

    def drops(self, round_number: int, receiver: Any, sender: Any) -> bool:
        """Whether the ``sender -> receiver`` payload is lost this round."""
        if self.plan.drop_rate == 0.0 or not self.in_window(round_number):
            return False
        return (
            self._fraction("drop", round_number, _node_key(receiver), _node_key(sender))
            < self.plan.drop_rate
        )

    def duplicates(self, round_number: int, receiver: Any, sender: Any) -> bool:
        """Whether the (surviving) payload is delivered twice."""
        if self.plan.duplicate_rate == 0.0 or not self.in_window(round_number):
            return False
        return (
            self._fraction("dup", round_number, _node_key(receiver), _node_key(sender))
            < self.plan.duplicate_rate
        )

    def reorder_permutation(
        self, round_number: int, receiver: Any, degree: int
    ) -> list[int] | None:
        """The permutation applied to the receiver's port-indexed inbox
        this round, or ``None``.  ``result[i]`` is the source index of
        inbox slot ``i``.  Identity draws are reported as ``None`` so a
        recorded reorder event always denotes an observable change."""
        if (
            self.plan.reorder_rate == 0.0
            or degree < 2
            or not self.in_window(round_number)
        ):
            return None
        key = _node_key(receiver)
        if self._fraction("reorder", round_number, key) >= self.plan.reorder_rate:
            return None
        # Deterministic Fisher-Yates driven by per-step hash fractions.
        perm = list(range(degree))
        for i in range(degree - 1, 0, -1):
            j = int(self._fraction("reorder-step", round_number, key, i) * (i + 1))
            perm[i], perm[j] = perm[j], perm[i]
        if perm == list(range(degree)):
            return None
        return perm

    def crashed(self, node: Any, round_number: int) -> bool:
        """Whether ``node`` is crash-stopped in ``round_number``."""
        crash_round = self._crash_rounds.get(node)
        return crash_round is not None and round_number >= crash_round

    def flips(self, node: Any, bit_index: int) -> bool:
        """Whether the node's ``bit_index``-th drawn bit is flipped."""
        if self.plan.corrupt_rate == 0.0:
            return False
        return (
            self._fraction("corrupt", _node_key(node), bit_index)
            < self.plan.corrupt_rate
        )
