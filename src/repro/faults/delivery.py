"""Faulty delivery: decorators applying a fault schedule at the
``emit``/``inbox`` boundary of any :class:`DeliveryDiscipline`.

:class:`FaultyDelivery` wraps a broadcast or port discipline and
perturbs what each node receives, per the plan's
:class:`~repro.faults.plan.FaultSchedule`:

* **broadcast** — dropped payloads vanish from the anonymous multiset,
  duplicated ones appear twice; the survivors are sorted with the same
  canonical key the bare discipline uses, so an empty plan reproduces
  the bare inbox byte for byte.
* **port** — the inbox keeps its fixed arity: a dropped payload is
  replaced by the :data:`LOST` sentinel, and a reorder event permutes
  the port-indexed tuple.  Duplication has no port-model analogue (the
  tuple cannot grow) and is ignored.

Crash-stop nodes are silenced symmetrically: from their crash round on,
no payload from them reaches anyone and nothing reaches them.  The
crashed node's *local* clock keeps ticking (it still transitions, on an
empty multiset or an all-``LOST`` tuple) — what the network observes is
exactly a crash-stop.  :class:`CrashDiscipline` is the crash-only
special case, and :class:`CorruptingTape` is the matching decorator for
the randomness boundary: it flips tape bits per the schedule.

The decorator never re-enters the wrapped discipline's logic: it calls
``inner.emit`` verbatim and reassembles inboxes itself, tracking the
round number by counting ``emit`` calls (the engine calls ``emit``
exactly once per round).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.exceptions import FaultInjectionError
from repro.faults.plan import FaultPlan, FaultSchedule
from repro.faults.trace import FaultEvent, FaultTrace
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.runtime.engine import (
    BroadcastDelivery,
    DeliveryDiscipline,
    PortDelivery,
    _message_sort_key,
)
from repro.runtime.tape import BitSource


class LostMessage:
    """Singleton sentinel delivered on a port whose payload was lost."""

    _instance: "LostMessage" | None = None

    def __new__(cls) -> "LostMessage":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<LOST>"

    def __reduce__(self):
        return (LostMessage, ())


LOST = LostMessage()


class FaultyDelivery(DeliveryDiscipline):
    """A :class:`DeliveryDiscipline` decorator injecting scheduled faults.

    Wraps exactly one execution: the round counter advances on every
    ``emit`` call, so reuse across executions would misalign fault
    rounds.  The harness creates a fresh decorator per run.
    """

    def __init__(
        self,
        inner: DeliveryDiscipline,
        schedule: "FaultSchedule | FaultPlan",
        trace: FaultTrace | None = None,
    ) -> None:
        if isinstance(schedule, FaultPlan):
            schedule = FaultSchedule(schedule)
        if isinstance(inner, PortDelivery):
            self._mode = "port"
        elif isinstance(inner, BroadcastDelivery):
            self._mode = "broadcast"
        else:
            raise FaultInjectionError(
                f"FaultyDelivery cannot wrap {type(inner).__name__}; only "
                "BroadcastDelivery and PortDelivery (and subclasses) are "
                "supported"
            )
        self._inner = inner
        self._schedule = schedule
        self._trace = trace if trace is not None else FaultTrace()
        self._round = 0
        self._crash_noted: set = set()
        self.name = f"faulty-{inner.name}"

    @property
    def inner(self) -> DeliveryDiscipline:
        return self._inner

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    @property
    def trace(self) -> FaultTrace:
        return self._trace

    @property
    def round_number(self) -> int:
        """The round currently being delivered (0 before the first)."""
        return self._round

    # ------------------------------------------------------------------

    def emit(
        self, algorithm: Any, states: Mapping[Node, Any], graph: LabeledGraph
    ) -> dict[Node, Any]:
        self._round += 1
        return self._inner.emit(algorithm, states, graph)

    def _silenced(self, node: Node) -> bool:
        """Whether ``node`` is crash-silenced this round (noting the
        crash event once, at the first silenced round)."""
        if not self._schedule.crashed(node, self._round):
            return False
        if node not in self._crash_noted:
            self._crash_noted.add(node)
            self._trace.record(FaultEvent("crash", self._round, node))
        return True

    def inbox(
        self, outboxes: Mapping[Node, Any], node: Node, graph: LabeledGraph
    ) -> tuple[Any, ...]:
        if self._mode == "broadcast":
            return self._broadcast_inbox(outboxes, node, graph)
        return self._port_inbox(outboxes, node, graph)

    def _broadcast_inbox(
        self, outboxes: Mapping[Node, Any], node: Node, graph: LabeledGraph
    ) -> tuple[Any, ...]:
        r, schedule = self._round, self._schedule
        receiver_down = self._silenced(node)
        received: list[Any] = []
        for u in graph.neighbors(node):
            if receiver_down or self._silenced(u):
                continue
            if schedule.drops(r, node, u):
                self._trace.record(FaultEvent("drop", r, node, (u,)))
                continue
            received.append(outboxes[u])
            if schedule.duplicates(r, node, u):
                self._trace.record(FaultEvent("duplicate", r, node, (u,)))
                received.append(outboxes[u])
        return tuple(sorted(received, key=_message_sort_key))

    def _port_inbox(
        self, outboxes: Mapping[Node, Any], node: Node, graph: LabeledGraph
    ) -> tuple[Any, ...]:
        r, schedule = self._round, self._schedule
        receiver_down = self._silenced(node)
        senders = list(graph.ports(node))
        entries: list[Any] = []
        for port, u in enumerate(senders):
            if receiver_down or self._silenced(u):
                entries.append(LOST)
            elif schedule.drops(r, node, u):
                self._trace.record(FaultEvent("drop", r, node, (u, port)))
                entries.append(LOST)
            else:
                entries.append(outboxes[u][graph.neighbor_to_port(u, node)])
        permutation = schedule.reorder_permutation(r, node, len(entries))
        if permutation is not None:
            self._trace.record(
                FaultEvent("reorder", r, node, tuple(permutation))
            )
            entries = [entries[source] for source in permutation]
        return tuple(entries)


class CrashDiscipline(FaultyDelivery):
    """Crash-stop silencing alone: a :class:`FaultyDelivery` whose plan
    contains nothing but the given ``(node, round)`` crash schedule."""

    def __init__(
        self,
        inner: DeliveryDiscipline,
        crashes: "Mapping[Node, int] | tuple[tuple[Node, int], ...]",
        trace: FaultTrace | None = None,
    ) -> None:
        if isinstance(crashes, Mapping):
            crashes = tuple(crashes.items())
        super().__init__(
            inner, FaultPlan(crashes=tuple(crashes)), trace=trace
        )


class CorruptingTape(BitSource):
    """A :class:`BitSource` decorator flipping bits per the schedule.

    The flip decision for a node's ``i``-th drawn bit depends only on
    ``(plan_seed, node, i)``, so the corrupted stream is as replayable
    as the underlying tape.  With ``corrupt_rate == 0`` the adapter is
    an exact pass-through.
    """

    def __init__(
        self,
        inner: BitSource,
        node: Node,
        schedule: "FaultSchedule | FaultPlan",
        trace: FaultTrace | None = None,
    ) -> None:
        if isinstance(schedule, FaultPlan):
            schedule = FaultSchedule(schedule)
        self._inner = inner
        self._node = node
        self._schedule = schedule
        self._trace = trace if trace is not None else FaultTrace()
        self._drawn = 0

    @property
    def inner(self) -> BitSource:
        return self._inner

    def draw(self, count: int) -> str:
        bits = self._inner.draw(count)
        out = []
        for offset, bit in enumerate(bits):
            index = self._drawn + offset
            if self._schedule.flips(self._node, index):
                self._trace.record(
                    FaultEvent("corrupt", 0, self._node, (index,))
                )
                out.append("1" if bit == "0" else "0")
            else:
                out.append(bit)
        self._drawn += len(bits)
        return "".join(out)

    def remaining(self, count: int) -> bool:
        return self._inner.remaining(count)
