"""Per-function taint summaries and the interprocedural fixpoint.

One :class:`FunctionSummary` per graph node answers three questions
without re-walking any other function:

* what taint kinds does the return value carry *intrinsically*
  (sources reached inside the function or its callees)?
* which formal parameters flow into the return value, and through
  which sanitizers?
* which parameters flow onward into a canonical sink called (possibly
  transitively) by this function, and what effects (I/O, non-local
  mutation, clock reads) does it transitively perform?

The fixpoint iterates all summaries until their shapes stabilize —
the lattice is finite (5 kinds × parameter masks × effect set) and
joins are monotone, so this is a handful of linear passes over the
program, never path enumeration.  Recursion needs no special casing:
a cycle just converges like any other chain.

After the fixpoint, :func:`collect_events` re-evaluates every function
once against the final summaries and logs *sink events* (a taint kind
arriving at a canonical sink call with its witness chain) and *return
events* (the taint of each ``return`` in algorithm-protocol methods),
which the FLOW/ANON/PURE rules translate into findings.

Precision choices (documented, deliberate):

* Subscript *reads* propagate the container's taint, not the index's,
  and subscript *writes* store only the value's taint — ``index[id(x)]``
  dict-keyed interning (the sanctioned pattern everywhere interned
  trees are deduplicated) therefore does not taint the stored values
  with IDENTITY.  Which value is read is control dependence, and the
  rules here track data flow.
* ``is``-comparisons yield untainted booleans: interned-object identity
  comparison is canonical by construction (PR 6/9 rely on it).
* Lambdas and nested defs are separate graph nodes; flows through
  first-class function values are not tracked (the call graph records
  such call sites as unresolved rather than dropping them silently).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.astutil import is_unordered_expr
from repro.lint.flow import lattice
from repro.lint.flow.callgraph import CallGraph, CallSite, FunctionInfo
from repro.lint.flow.lattice import EMPTY, ParamFlow, Taints

__all__ = [
    "FunctionSummary",
    "ReturnEvent",
    "SinkEvent",
    "collect_events",
    "compute_summaries",
]

#: Hard cap on fixpoint passes; the lattice converges far earlier, this
#: only bounds pathological inputs.
MAX_PASSES = 12


def _unordered_iter_source(node, imports) -> "str | None":
    """Flow-level unordered-iteration source: set displays, set
    comprehensions, ``set(...)``/``frozenset(...)``.

    Deliberately *narrower* than DET002's :func:`is_unordered_expr`:
    dict views are insertion-ordered, and whether that insertion order
    was deterministic is already tracked by the taint the dict itself
    carries — treating every ``.items()`` as a source would flag flows
    that are provably order-independent (e.g. reading a dict through
    its sorted key set).  The syntactic DET002 keeps its stricter
    stance at its specific sinks.
    """
    desc = is_unordered_expr(node, imports)
    if desc is not None and "dict view" in desc:
        return None
    return desc


@dataclass
class FunctionSummary:
    """What a caller needs to know about one function."""

    #: Taint of the return value: concrete kinds (with witness chains)
    #: plus parameter markers (with sanitizer masks).
    returns: Taints = field(default_factory=Taints)
    #: ``(param index, sink qualname) -> ParamFlow``: the parameter
    #: reaches that canonical sink (possibly through further callees).
    param_sinks: "dict[tuple[int, str], ParamFlow]" = field(default_factory=dict)
    #: Transitive effects for PURE001: effect name -> witness chain.
    effects: "dict[str, tuple[str, ...]]" = field(default_factory=dict)

    def shape(self) -> "tuple":
        return (
            self.returns.shape(),
            tuple(
                sorted(
                    (key, tuple(sorted(flow.cleared)))
                    for key, flow in self.param_sinks.items()
                )
            ),
            tuple(sorted(self.effects)),
        )


@dataclass
class SinkEvent:
    """One taint kind arriving at one canonical sink call site."""

    function: FunctionInfo  # where the offending call site is
    lineno: int
    col: int
    kind: str
    chain: "tuple[str, ...]"
    sink_label: str
    sink_qualname: str


@dataclass
class ReturnEvent:
    """Taint of one ``return`` in an algorithm-protocol method."""

    function: FunctionInfo
    lineno: int
    col: int
    kind: str
    chain: "tuple[str, ...]"


class _Evaluator:
    """One abstract-interpretation pass over one function body."""

    def __init__(
        self,
        graph: CallGraph,
        summaries: "dict[str, FunctionSummary]",
        fi: FunctionInfo,
        on_sink=None,
        on_return=None,
    ) -> None:
        self.graph = graph
        self.summaries = summaries
        self.fi = fi
        self.on_sink = on_sink
        self.on_return = on_return
        self.env: "dict[str, Taints]" = {}
        for index, name in enumerate(fi.params):
            self.env[name] = Taints.of_param(index)
        # Keyword-only / star parameters: tracked as unsanitizable param
        # flows anchored past the positional ones.
        extra = len(fi.params)
        for name in fi.kwonly:
            self.env[name] = Taints.of_param(extra)
            extra += 1
        if fi.vararg:
            self.env[fi.vararg] = Taints.of_param(extra)
            extra += 1
        if fi.kwarg:
            self.env[fi.kwarg] = Taints.of_param(extra)
        self.globals_declared: "set[str]" = set()
        self.summary = FunctionSummary()

    # -- driving --------------------------------------------------------

    def run(self) -> FunctionSummary:
        self._exec_body(self.fi.node.body)
        if self.fi.module == lattice.TAPE_MODULE:
            # The tape layer is the sanctioned entropy boundary.
            self.summary.returns = self.summary.returns.without(
                lattice.TAPE_CLEARS
            )
            self.summary.effects.pop(lattice.EFFECT_CLOCK, None)
        if self.fi.module in lattice.INTERNING_MODULES:
            # Content-keyed intern tables: observationally pure.
            self.summary.effects.pop(lattice.EFFECT_MUTATION, None)
        return self.summary

    def _site(self, node: "ast.AST") -> str:
        return f"{self.fi.relpath}:{getattr(node, 'lineno', self.fi.lineno)}"

    def _exec_body(self, body) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    # -- statements -----------------------------------------------------

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # separate graph nodes
        if isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Pass)):
            return
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            self.globals_declared.update(stmt.names)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            taints = self._eval(stmt.value) if stmt.value is not None else EMPTY
            self.summary.returns = self.summary.returns.union(taints)
            if self.on_return is not None and stmt.value is not None:
                for kind, chain in taints.kinds.items():
                    self.on_return(
                        ReturnEvent(
                            function=self.fi,
                            lineno=stmt.lineno,
                            col=stmt.col_offset + 1,
                            kind=kind,
                            chain=chain,
                        )
                    )
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(stmt)
            return
        if isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
            iter_taints = self._eval(stmt.iter)
            unordered = _unordered_iter_source(
                stmt.iter, self.graph.modules[self.fi.module].imports
            )
            if unordered is not None:
                iter_taints = iter_taints.union(
                    Taints.of_kind(
                        lattice.UNORDERED,
                        f"iteration over {unordered} at {self._site(stmt.iter)}",
                    )
                )
            self._bind_target(stmt.target, iter_taints)
            # Two passes so taint flowing through loop-carried locals
            # stabilizes (a second pass reaches anything a first-pass
            # assignment introduced).
            self._exec_body(stmt.body)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_body(stmt.body)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, taints)
            self._exec_body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._exec_body(stmt.body)
            for handler in stmt.handlers:
                self._exec_body(handler.body)
            self._exec_body(stmt.orelse)
            self._exec_body(stmt.finalbody)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
            return
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
            return
        # Match statements and anything newer: evaluate all contained
        # expressions conservatively, bind nothing.
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._eval(node)
            elif isinstance(node, ast.stmt):
                self._exec_stmt(node)

    def _exec_assign(self, stmt) -> None:
        value = getattr(stmt, "value", None)
        taints = self._eval(value) if value is not None else EMPTY
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        if isinstance(stmt, ast.AugAssign):
            # x += y joins both sides (and reads the old x).
            old = self._eval_target_read(stmt.target)
            taints = taints.union(old)
        for target in targets:
            self._bind_target(target, taints)

    def _eval_target_read(self, target) -> Taints:
        if isinstance(target, ast.Name):
            return self.env.get(target.id, EMPTY)
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            return self._eval(target.value)
        return EMPTY

    def _bind_target(self, target, taints: Taints) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._effect(
                    lattice.EFFECT_MUTATION,
                    f"assigns global {target.id!r} at {self._site(target)}",
                )
            self.env[target.id] = taints
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, taints)
            return
        if isinstance(target, ast.Starred):
            self._bind_target(target.value, taints)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value
            # Store into a local container: the container now carries
            # the value's taint (values only — see the module docstring
            # on dict-key interning).
            if isinstance(base, ast.Name):
                if self._is_nonlocal_base(base):
                    self._effect(
                        lattice.EFFECT_MUTATION,
                        f"mutates module-level {base.id!r} at {self._site(target)}",
                    )
                if base.id in self.env:
                    self.env[base.id] = self.env[base.id].union(taints)
            else:
                self._eval(base)

    def _is_nonlocal_base(self, base: ast.Name) -> bool:
        """A store through a name that is not a local binding mutates
        module-level (or closure) state."""
        return base.id not in self.env or base.id in self.globals_declared

    def _effect(self, effect: str, witness: str) -> None:
        self.summary.effects.setdefault(effect, (witness,))

    # -- expressions ----------------------------------------------------

    def _eval(self, node: "ast.expr | None") -> Taints:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, float):
                return Taints.of_kind(
                    lattice.FLOAT, f"float literal at {self._site(node)}"
                )
            return EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            taints = self._eval(node.left).union(self._eval(node.right))
            if isinstance(node.op, ast.Div):
                taints = taints.union(
                    Taints.of_kind(
                        lattice.FLOAT, f"true division at {self._site(node)}"
                    )
                )
            return taints
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out = out.union(self._eval(value))
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            out = self._eval(node.left)
            for comparator in node.comparators:
                out = out.union(self._eval(comparator))
            if all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
                # Interned-identity comparison is canonical by design.
                return EMPTY
            # A boolean is exact; platform float drift does not survive
            # into it in any way this analysis distinguishes.
            return out.without({lattice.FLOAT})
        if isinstance(node, ast.IfExp):
            return (
                self._eval(node.test)
                .union(self._eval(node.body))
                .union(self._eval(node.orelse))
            )
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)  # index taint is control dependence
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            out = EMPTY
            for element in node.elts:
                out = out.union(self._eval(element))
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out = out.union(self._eval(key))
            for value in node.values:
                out = out.union(self._eval(value))
            return out
        if isinstance(node, ast.Set):
            out = Taints.of_kind(
                lattice.UNORDERED, f"set display at {self._site(node)}"
            )
            for element in node.elts:
                out = out.union(self._eval(element))
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            out = self._eval_comprehension(node.generators)
            out = out.union(self._eval(node.elt))
            if isinstance(node, ast.SetComp):
                out = out.union(
                    Taints.of_kind(
                        lattice.UNORDERED,
                        f"set comprehension at {self._site(node)}",
                    )
                )
            return out
        if isinstance(node, ast.DictComp):
            out = self._eval_comprehension(node.generators)
            return out.union(self._eval(node.key)).union(self._eval(node.value))
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                out = out.union(self._eval(value))
            return out
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                taints = self._eval(node.value)
                self.summary.returns = self.summary.returns.union(taints)
                return EMPTY
            return EMPTY
        if isinstance(node, ast.NamedExpr):
            taints = self._eval(node.value)
            self._bind_target(node.target, taints)
            return taints
        if isinstance(node, ast.Lambda):
            return EMPTY  # separate node; flows through values untracked
        if isinstance(node, ast.Slice):
            out = EMPTY
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out = out.union(self._eval(part))
            return out
        # Anything else: fold over child expressions.
        out = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out = out.union(self._eval(child))
        return out

    def _eval_comprehension(self, generators) -> Taints:
        out = EMPTY
        imports = self.graph.modules[self.fi.module].imports
        for gen in generators:
            iter_taints = self._eval(gen.iter)
            unordered = _unordered_iter_source(gen.iter, imports)
            if unordered is not None:
                iter_taints = iter_taints.union(
                    Taints.of_kind(
                        lattice.UNORDERED,
                        f"iteration over {unordered} at {self._site(gen.iter)}",
                    )
                )
            self._bind_target(gen.target, iter_taints)
            for condition in gen.ifs:
                self._eval(condition)
            out = out.union(iter_taints)
        return out

    # -- calls ----------------------------------------------------------

    def _eval_call(self, call: ast.Call) -> Taints:
        site = self.graph.resolve_call(self.fi, call)
        base_taints = EMPTY
        if isinstance(call.func, ast.Attribute):
            base_taints = self._eval(call.func.value)
        pos_args = [self._eval(arg) for arg in call.args]
        kw_taints = EMPTY
        for keyword in call.keywords:
            kw_taints = kw_taints.union(self._eval(keyword.value))
        all_args = base_taints.union(*pos_args).union(kw_taints)

        name = site.target if site.kind == "external" else None

        # Sources.
        if name is not None:
            kind = lattice.source_kind_of_call(name)
            if kind is None and name == "random.Random" and not (
                call.args or call.keywords
            ):
                kind = lattice.ENTROPY
            if kind is not None:
                if kind == lattice.CLOCK:
                    self._effect(
                        lattice.EFFECT_CLOCK,
                        f"{name}() at {self._site(call)}",
                    )
                return all_args.union(
                    Taints.of_kind(kind, f"{name}() at {self._site(call)}")
                )

        # Sanitizers.
        if name is not None and name in lattice.SANITIZER_CALLS:
            return all_args.without(lattice.SANITIZER_CALLS[name])

        # Unordered constructors (set(...), frozenset(...)).
        imports = self.graph.modules[self.fi.module].imports
        unordered = _unordered_iter_source(call, imports)
        if unordered is not None:
            return all_args.union(
                Taints.of_kind(
                    lattice.UNORDERED,
                    f"{unordered} at {self._site(call)}",
                )
            )

        # I/O and mutation effects on external / untyped calls.
        if site.kind in ("external", "ambiguous", "unresolved"):
            if lattice.io_effect_of_call(name, site.attr):
                self._effect(
                    lattice.EFFECT_IO,
                    f"{name or '.' + (site.attr or '?')}() at {self._site(call)}",
                )
            if (
                site.attr in lattice.MUTATING_ATTR_CALLS
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and self._is_nonlocal_base(call.func.value)
            ):
                self._effect(
                    lattice.EFFECT_MUTATION,
                    f".{site.attr}() on module-level "
                    f"{call.func.value.id!r} at {self._site(call)}",
                )
            # In-place mutators write their arguments into the local
            # receiver (x.append(tainted) taints x).
            if (
                site.attr in lattice.MUTATING_ATTR_CALLS
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id in self.env
            ):
                receiver = call.func.value.id
                self.env[receiver] = self.env[receiver].union(
                    EMPTY.union(*pos_args).union(kw_taints)
                )
            if site.attr in lattice.KEYED_ACCESS_ATTRS and call.args:
                # d.get(key) / d.pop(key): the key is control
                # dependence, like a subscript read — the result
                # carries the container (and default), not the key.
                return base_taints.union(*pos_args[1:]).union(kw_taints)
            return all_args

        # Internal functions, methods and constructors.
        if site.kind == "constructor":
            init = None
            cls = self.graph.classes.get(site.target or "")
            if cls is not None:
                init_fi = self.graph.lookup_method(cls, "__init__")
                if init_fi is not None:
                    init = self.summaries.get(init_fi.qualname)
                    self._apply_callee(
                        init_fi, init, call, [EMPTY, *pos_args], kw_taints
                    )
            # The object carries what it was built from.
            return all_args

        if site.kind == "internal" and site.target is not None:
            callee = self.graph.functions.get(site.target)
            summary = self.summaries.get(site.target)
            args = pos_args
            if (
                callee is not None
                and callee.cls is not None
                and not callee.is_static
                and isinstance(call.func, ast.Attribute)
            ):
                # Bound call: the receiver is argument 0.
                args = [base_taints, *pos_args]
            result = self._apply_callee(callee, summary, call, args, kw_taints)
            return result

        return all_args

    def _apply_callee(
        self,
        callee: "FunctionInfo | None",
        summary: "FunctionSummary | None",
        call: ast.Call,
        args: "list[Taints]",
        kw_taints: Taints,
    ) -> Taints:
        """Substitute a callee summary at a call site: map argument
        taints through parameter flows, fire sink flows, inherit
        effects, and return the call's result taint."""
        if callee is None or summary is None:
            return EMPTY.union(*args).union(kw_taints)
        frame = f"via {callee.qualname} (called at {self._site(call)})"

        result = Taints(
            kinds={
                kind: lattice.extend_chain(chain, frame)
                for kind, chain in summary.returns.kinds.items()
            }
        )
        spill = kw_taints  # keyword taints reach params we do not map
        for index, flow in summary.returns.params.items():
            arg = args[index] if index < len(args) else spill
            passed = arg.without(flow.cleared)
            result = result.union(
                Taints(
                    kinds={
                        kind: lattice.extend_chain(chain, frame)
                        for kind, chain in passed.kinds.items()
                    },
                    params=passed.params,
                )
            )
        # Unmapped keyword arguments conservatively reach the result.
        result = result.union(
            Taints(
                kinds={
                    kind: lattice.extend_chain(chain, frame)
                    for kind, chain in spill.kinds.items()
                },
                params=spill.params,
            )
        )

        # Effects propagate to the caller.
        for effect, chain in summary.effects.items():
            self.summary.effects.setdefault(
                effect, lattice.extend_chain(chain, frame)
            )

        # Sinks: if the callee *is* a canonical sink, report the taint
        # crossing that boundary and stop — its internal calls to
        # deeper sinks (encode_views -> canonical_bytes) are the sink's
        # own plumbing, and cascading them would triplicate findings.
        label = lattice.canonical_sink_label(callee.qualname)
        if label is not None:
            every = EMPTY.union(*args).union(kw_taints)
            self._sink_hit(callee.qualname, label, call, every, ())
        else:
            # Otherwise: arguments continuing into sinks further down.
            self._fire_sinks(callee, summary, call, args, kw_taints)
        return result

    def _fire_sinks(
        self, callee, summary, call, args, kw_taints: Taints
    ) -> None:
        for (index, sink_qual), flow in summary.param_sinks.items():
            arg = args[index] if index < len(args) else kw_taints
            passed = arg.without(flow.cleared)
            if passed.is_empty():
                continue
            label = lattice.canonical_sink_label(sink_qual) or sink_qual
            self._sink_hit(sink_qual, label, call, passed, flow.chain)

    def _sink_hit(
        self,
        sink_qual: str,
        label: str,
        call: ast.Call,
        taints: Taints,
        onward_chain: "tuple[str, ...]",
    ) -> None:
        """Taint arrived at a sink: emit events for concrete kinds and
        record parameter markers in this function's own summary."""
        for kind, chain in taints.kinds.items():
            if self.on_sink is not None:
                full = chain + onward_chain
                full = lattice.extend_chain(
                    full, f"reaches {label} at {self._site(call)}"
                )
                self.on_sink(
                    SinkEvent(
                        function=self.fi,
                        lineno=call.lineno,
                        col=call.col_offset + 1,
                        kind=kind,
                        chain=full,
                        sink_label=label,
                        sink_qualname=sink_qual,
                    )
                )
        for index, flow in taints.params.items():
            key = (index, sink_qual)
            carried = ParamFlow(
                cleared=flow.cleared,
                chain=lattice.extend_chain(
                    flow.chain,
                    f"passed on at {self._site(call)} toward {label}",
                ),
            )
            existing = self.summary.param_sinks.get(key)
            self.summary.param_sinks[key] = (
                existing.merge(carried) if existing is not None else carried
            )


def compute_summaries(graph: CallGraph) -> "dict[str, FunctionSummary]":
    """Iterate per-function summaries to the interprocedural fixpoint."""
    summaries: "dict[str, FunctionSummary]" = {
        qualname: FunctionSummary() for qualname in graph.functions
    }
    for _ in range(MAX_PASSES):
        changed = False
        for qualname, fi in graph.functions.items():
            new = _Evaluator(graph, summaries, fi).run()
            if new.shape() != summaries[qualname].shape():
                summaries[qualname] = new
                changed = True
        if not changed:
            break
    return summaries


def collect_events(
    graph: CallGraph, summaries: "dict[str, FunctionSummary]"
) -> "tuple[list[SinkEvent], list[ReturnEvent]]":
    """One reporting pass with the final summaries: log every concrete
    taint arriving at a canonical sink, and every tainted ``return`` of
    an algorithm-protocol method."""
    sink_events: "list[SinkEvent]" = []
    return_events: "list[ReturnEvent]" = []
    for fi in graph.functions.values():
        wants_returns = (
            fi.cls is not None
            and fi.node.name in lattice.ALGORITHM_PROTOCOL
            and graph.class_derives_from(fi.cls, lattice.ALGORITHM_BASES)
        )
        _Evaluator(
            graph,
            summaries,
            fi,
            on_sink=sink_events.append,
            on_return=return_events.append if wants_returns else None,
        ).run()
    # Deterministic order; dedup repeated events from loop double-passes.
    seen: set = set()
    unique_sinks = []
    for event in sink_events:
        key = (
            event.function.qualname,
            event.lineno,
            event.col,
            event.kind,
            event.sink_qualname,
        )
        if key not in seen:
            seen.add(key)
            unique_sinks.append(event)
    seen.clear()
    unique_returns = []
    for revent in return_events:
        key = (revent.function.qualname, revent.lineno, revent.kind)
        if key not in seen:
            seen.add(key)
            unique_returns.append(revent)
    unique_sinks.sort(
        key=lambda e: (e.function.relpath, e.lineno, e.col, e.kind)
    )
    unique_returns.sort(
        key=lambda e: (e.function.relpath, e.lineno, e.kind)
    )
    return unique_sinks, unique_returns
