"""Whole-program call graph of the analyzed ``src/`` tree.

Nodes are module-qualified defs: ``repro.views.refinement.refine``,
``repro.views.view_tree.ViewTree.make``, nested defs as
``outer.inner``.  Every ``def`` found by the indexer *is* a node —
the coverage test in ``tests/lint/test_callgraph.py`` pins that — and
every call site resolves to exactly one of:

``internal``
    a function/method node of the graph (the summary edge);
``constructor``
    a class node — the abstract result carries the argument taints and
    the local is typed for later ``var.method()`` resolution;
``external``
    a dotted name outside the program (stdlib, builtins) — modeled by
    the source/sanitizer tables, otherwise taint-propagating;
``ambiguous``
    an attribute call whose method name exists on several program
    classes and whose receiver type is unknown — recorded with its
    candidates, treated like ``external`` for taint;
``unresolved``
    everything else (callable locals, ``*`` imports, dynamic dispatch)
    — recorded, never silently dropped.

Resolution order for an attribute call ``base.attr(...)``: ``super()``
delegation, ``self``/``cls`` method lookup through the base-class
chain, dotted import resolution (through package re-exports), local
constructor types, then the unique-method-name heuristic.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "build_call_graph",
    "module_name_of",
    "own_nodes",
]


def own_nodes(root: "ast.AST"):
    """Walk ``root`` without descending into nested def/class bodies —
    a function's statements belong to it, a closure's to the closure
    (which is its own graph node)."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def module_name_of(relpath: str) -> "str | None":
    """Dotted module name of a root-relative ``src/`` path, or None."""
    if not relpath.startswith("src/") or not relpath.endswith(".py"):
        return None
    parts = relpath[len("src/") : -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or not all(p.isidentifier() for p in parts):
        return None
    return ".".join(parts)


@dataclass
class ClassInfo:
    qualname: str
    module: str
    relpath: str
    node: ast.ClassDef
    #: Base expressions resolved to dotted names where possible (via the
    #: module's ImportMap or local scope); unresolvable bases kept raw.
    bases: "tuple[str, ...]" = ()
    methods: "dict[str, FunctionInfo]" = field(default_factory=dict)


@dataclass
class FunctionInfo:
    qualname: str
    module: str
    relpath: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    cls: "ClassInfo | None" = None
    #: Positional parameter names in call order (posonly + args); for
    #: bound methods this *includes* ``self``/``cls`` so argument index
    #: 0 is the receiver.
    params: "tuple[str, ...]" = ()
    kwonly: "tuple[str, ...]" = ()
    vararg: "str | None" = None
    kwarg: "str | None" = None
    is_static: bool = False
    decorators: "tuple[str, ...]" = ()

    @property
    def lineno(self) -> int:
        return self.node.lineno

    def param_index(self, name: str) -> "int | None":
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class CallSite:
    kind: str  # internal | constructor | external | ambiguous | unresolved
    target: "str | None"  # qualname (internal/constructor), dotted name (external)
    attr: "str | None" = None  # trailing attribute name, when any
    candidates: "tuple[str, ...]" = ()  # ambiguous targets
    heuristic: bool = False  # resolved by the unique-name heuristic


#: Attribute names that exist on builtin containers/strings/files: the
#: unique-method-name heuristic must never resolve these to a program
#: method, because ``pool.append(...)`` on a plain list would otherwise
#: bind to the one program class that happens to define ``append``.
_GENERIC_ATTRS = frozenset(
    name
    for typ in (list, dict, set, frozenset, tuple, str, bytes, int, float)
    for name in dir(typ)
) | {"flush", "close", "read", "readline", "readlines", "seek", "write"}


def _decorator_names(node, imports) -> "tuple[str, ...]":
    names = []
    for dec in node.decorator_list:
        expr = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted_of(expr)
        if dotted is not None:
            names.append(imports.origin_of(dotted.split(".")[0]) or dotted)
        else:
            names.append("<dynamic>")
    return tuple(names)


def _dotted_of(node: ast.AST) -> "str | None":
    """``a.b.c`` as a string, or None for non-name-rooted chains."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _Indexer(ast.NodeVisitor):
    """One pass per module collecting functions and classes."""

    def __init__(self, graph: "CallGraph", modname: str, module) -> None:
        self.graph = graph
        self.modname = modname
        self.module = module
        self.scope: "list[str]" = []
        self.class_stack: "list[ClassInfo | None]" = []

    def _qual(self, name: str) -> str:
        return ".".join([self.modname, *self.scope, name])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            dotted = _dotted_of(base)
            if dotted is None:
                bases.append("<dynamic>")
                continue
            resolved = self.graph._resolve_dotted_in_module(
                self.modname, self.module, dotted
            )
            bases.append(resolved if resolved is not None else dotted)
        info = ClassInfo(
            qualname=self._qual(node.name),
            module=self.modname,
            relpath=self.module.relpath,
            node=node,
            bases=tuple(bases),
        )
        self.graph.classes[info.qualname] = info
        self.scope.append(node.name)
        self.class_stack.append(info)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()

    def _visit_def(self, node) -> None:
        cls = self.class_stack[-1] if self.class_stack else None
        # Only a def whose *immediate* lexical parent is the class is a
        # method of it; a def nested inside a method is a plain closure.
        if cls is not None and self.scope and self.scope[-1] != cls.node.name:
            cls = None
        decorators = _decorator_names(node, self.module.imports)
        is_static = any(d.endswith("staticmethod") for d in decorators)
        args = node.args
        params = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        if cls is not None and is_static and params:
            pass  # staticmethods have no receiver; params are as written
        info = FunctionInfo(
            qualname=self._qual(node.name),
            module=self.modname,
            relpath=self.module.relpath,
            node=node,
            cls=cls,
            params=tuple(params),
            kwonly=tuple(a.arg for a in args.kwonlyargs),
            vararg=args.vararg.arg if args.vararg else None,
            kwarg=args.kwarg.arg if args.kwarg else None,
            is_static=is_static,
            decorators=decorators,
        )
        self.graph.functions[info.qualname] = info
        if cls is not None:
            cls.methods[node.name] = info
            self.graph.methods_by_name.setdefault(node.name, []).append(info)
        elif not self.scope:
            self.graph.module_scope[self.modname].setdefault(
                node.name, info.qualname
            )
        self.scope.append(node.name)
        self.class_stack.append(None)  # defs nested below are closures
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def


class CallGraph:
    """The program index plus call-site resolution."""

    def __init__(self) -> None:
        self.modules: "dict[str, Any]" = {}  # dotted module -> ModuleContext
        self.functions: "dict[str, FunctionInfo]" = {}
        self.classes: "dict[str, ClassInfo]" = {}
        self.methods_by_name: "dict[str, list[FunctionInfo]]" = {}
        #: Per-module top-level name -> qualname (defs and classes).
        self.module_scope: "dict[str, dict[str, str]]" = {}
        #: Call-site log for the dump: (caller, CallSite, lineno).
        self.edges: "set[tuple[str, str]]" = set()
        self.unresolved: "list[dict[str, Any]]" = []
        self.ambiguous: "list[dict[str, Any]]" = []
        self._local_types_cache: "dict[str, dict[str, str]]" = {}
        self.def_count: int = 0  # every def/async def seen, dunders included
        self.nondunder_def_count: int = 0

    # -- name resolution ------------------------------------------------

    def _resolve_dotted_in_module(
        self, modname: str, module, dotted: str
    ) -> "str | None":
        """Resolve ``a.b.c`` as written in ``modname`` to a program
        qualname (function or class), through imports and re-exports."""
        head, _, rest = dotted.partition(".")
        scope = self.module_scope.get(modname, {})
        if head in scope:
            return self._resolve_global(
                scope[head] + ("." + rest if rest else "")
            )
        origin = module.imports.origin_of(head)
        if origin is not None:
            return self._resolve_global(origin + ("." + rest if rest else ""))
        return None

    def _resolve_global(self, dotted: str, depth: int = 0) -> "str | None":
        """Resolve an absolute dotted name to a program qualname,
        following package re-exports (``from repro.views import X``)."""
        if depth > 8:
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        head, _, attr = dotted.rpartition(".")
        if not head:
            return None
        # Class attribute: resolve the class part, then the method.
        resolved_head = None
        if head in self.classes:
            resolved_head = head
        elif head in self.modules:
            # Name inside a known module: local scope, then its imports.
            scope = self.module_scope.get(head, {})
            if attr in scope:
                if scope[attr] == dotted:
                    # Defined right there: ``dotted`` IS the canonical
                    # qualname (the def/class may not be indexed yet
                    # during the base-resolution pre-pass).
                    return dotted
                return self._resolve_global(scope[attr], depth + 1)
            origin = self.modules[head].imports.origin_of(attr)
            if origin is not None:
                return self._resolve_global(origin, depth + 1)
            return None
        else:
            resolved_head = self._resolve_global(head, depth + 1)
        if resolved_head is not None and resolved_head in self.classes:
            method = self.lookup_method(self.classes[resolved_head], attr)
            if method is not None:
                return method.qualname
        return None

    def lookup_method(
        self, cls: ClassInfo, name: str, _seen: "frozenset" = frozenset()
    ) -> "FunctionInfo | None":
        """Method resolution through the (linearized) base-class chain."""
        if cls.qualname in _seen:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            base_cls = self.classes.get(base) or (
                self.classes.get(self._resolve_global(base) or "")
            )
            if base_cls is not None:
                found = self.lookup_method(
                    base_cls, name, _seen | {cls.qualname}
                )
                if found is not None:
                    return found
        return None

    def class_derives_from(self, cls: ClassInfo, base_qualnames: set) -> bool:
        """True if ``cls``'s base chain reaches any of ``base_qualnames``
        (bases outside the program compare by their dotted import name)."""
        stack, seen = list(cls.bases), set()
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            if base in base_qualnames:
                return True
            base_cls = self.classes.get(base)
            if base_cls is None:
                resolved = self._resolve_global(base)
                base_cls = self.classes.get(resolved or "")
            if base_cls is not None:
                if base_cls.qualname in base_qualnames:
                    return True
                stack.extend(base_cls.bases)
        return False

    # -- local constructor types ---------------------------------------

    def local_types(self, fi: FunctionInfo) -> "dict[str, str]":
        """``name -> class qualname`` for locals assigned a constructor
        call of a program class (one pass, assignment-order blind)."""
        cached = self._local_types_cache.get(fi.qualname)
        if cached is not None:
            return cached
        types: "dict[str, str]" = {}
        module = self.modules.get(fi.module)
        if fi.cls is not None:
            types["self"] = fi.cls.qualname
            types["cls"] = fi.cls.qualname
        for node in own_nodes(fi.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            dotted = _dotted_of(node.value.func)
            if dotted is None or module is None:
                continue
            resolved = self._resolve_dotted_in_module(fi.module, module, dotted)
            if resolved in self.classes:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = resolved
        self._local_types_cache[fi.qualname] = types
        return types

    # -- call resolution ------------------------------------------------

    def resolve_call(self, fi: FunctionInfo, call: ast.Call) -> CallSite:
        func = call.func
        module = self.modules.get(fi.module)

        # super().m(...) — delegate to the base-class chain.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and fi.cls is not None
        ):
            for base in fi.cls.bases:
                base_cls = self.classes.get(base) or self.classes.get(
                    self._resolve_global(base) or ""
                )
                if base_cls is not None:
                    found = self.lookup_method(base_cls, func.attr)
                    if found is not None:
                        return CallSite("internal", found.qualname, attr=func.attr)
            return CallSite("unresolved", f"super().{func.attr}", attr=func.attr)

        dotted = _dotted_of(func)
        local_types = self.local_types(fi)

        if dotted is not None:
            head = dotted.split(".", 1)[0]
            # Receiver-typed attribute call: self.m(), x.m() after
            # x = ClassName(...).
            if "." in dotted and head in local_types:
                cls = self.classes.get(local_types[head])
                attr_chain = dotted.split(".")[1:]
                if cls is not None and len(attr_chain) == 1:
                    found = self.lookup_method(cls, attr_chain[0])
                    if found is not None:
                        return CallSite(
                            "internal", found.qualname, attr=attr_chain[0]
                        )
            # Import / local-scope resolution (also bare names).
            if module is not None:
                resolved = self._resolve_dotted_in_module(
                    fi.module, module, dotted
                )
                if resolved is not None:
                    if resolved in self.classes:
                        return CallSite("constructor", resolved)
                    return CallSite("internal", resolved)
                # Known external dotted origin (stdlib etc.).
                origin = module.imports.origin_of(head)
                if origin is not None:
                    rest = dotted.split(".", 1)
                    external = origin + ("." + rest[1] if len(rest) > 1 else "")
                    return CallSite(
                        "external",
                        external,
                        attr=dotted.rsplit(".", 1)[-1] if "." in dotted else None,
                    )
            if "." not in dotted:
                if hasattr(builtins, dotted):
                    return CallSite("external", dotted)
                # Callable local, `*` import, or dynamic alias: recorded
                # as unresolved, never silently dropped.
                return CallSite("unresolved", dotted)

        # Attribute call on an untyped receiver: the heuristics.
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _GENERIC_ATTRS:
                # Probably a builtin container/str/file method; the
                # unique-name heuristic would misbind it.
                return CallSite("external", None, attr=attr)
            candidates = self.methods_by_name.get(attr, [])
            if len(candidates) == 1:
                return CallSite(
                    "internal",
                    candidates[0].qualname,
                    attr=attr,
                    heuristic=True,
                )
            if len(candidates) > 1:
                return CallSite(
                    "ambiguous",
                    None,
                    attr=attr,
                    candidates=tuple(c.qualname for c in candidates),
                )
            return CallSite("external", None, attr=attr)

        return CallSite("unresolved", dotted)

    def record_call(self, fi: FunctionInfo, call: ast.Call, site: CallSite) -> None:
        """Log the resolution for the dump; idempotent per (caller, target)."""
        if site.kind in ("internal", "constructor") and site.target:
            self.edges.add((fi.qualname, site.target))
        elif site.kind == "ambiguous":
            self.ambiguous.append(
                {
                    "caller": fi.qualname,
                    "attr": site.attr,
                    "line": call.lineno,
                    "candidates": list(site.candidates),
                }
            )
        elif site.kind == "unresolved" or (
            site.kind == "external" and site.target is None and site.attr is None
        ):
            self.unresolved.append(
                {
                    "caller": fi.qualname,
                    "name": site.target or site.attr or "<dynamic>",
                    "line": call.lineno,
                }
            )

    # -- dump -----------------------------------------------------------

    def stats(self) -> "dict[str, Any]":
        return {
            "modules": len(self.modules),
            "functions": len(self.functions),
            "classes": len(self.classes),
            "edges": len(self.edges),
            "defs_total": self.def_count,
            "defs_nondunder": self.nondunder_def_count,
            "unresolved_calls": len(self.unresolved),
            "ambiguous_calls": len(self.ambiguous),
        }

    def as_dict(self) -> "dict[str, Any]":
        return {
            "schema_version": 1,
            "tool": "repro-lint-flow",
            "stats": self.stats(),
            "nodes": [
                {
                    "qualname": fi.qualname,
                    "path": fi.relpath,
                    "line": fi.lineno,
                    "class": fi.cls.qualname if fi.cls else None,
                }
                for fi in sorted(self.functions.values(), key=lambda f: f.qualname)
            ],
            "edges": sorted([caller, callee] for caller, callee in self.edges),
            "unresolved": sorted(
                self.unresolved, key=lambda u: (u["caller"], u["line"])
            ),
            "ambiguous": sorted(
                self.ambiguous, key=lambda a: (a["caller"], a["line"])
            ),
        }


def build_call_graph(modules) -> CallGraph:
    """Index ``modules`` and resolve every call site once (the edge set
    for the dump; the evaluator re-resolves lazily during taint runs)."""
    graph = CallGraph()
    indexable = []
    for module in modules:
        modname = module_name_of(module.relpath)
        if modname is None:
            continue
        graph.modules[modname] = module
        graph.module_scope.setdefault(modname, {})
        indexable.append((modname, module))
    # Two passes: top-level names must exist before base-class and
    # re-export resolution can cross modules.
    for modname, module in indexable:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                graph.module_scope[modname][node.name] = f"{modname}.{node.name}"
            elif isinstance(node, ast.ClassDef):
                graph.module_scope[modname][node.name] = f"{modname}.{node.name}"
    for modname, module in indexable:
        _Indexer(graph, modname, module).visit(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                graph.def_count += 1
                if not (
                    node.name.startswith("__") and node.name.endswith("__")
                ):
                    graph.nondunder_def_count += 1
    # Resolve every call site once so the dump is complete even when no
    # taint pass runs.
    for fi in graph.functions.values():
        for node in own_nodes(fi.node):
            if isinstance(node, ast.Call):
                graph.record_call(fi, node, graph.resolve_call(fi, node))
    return graph
