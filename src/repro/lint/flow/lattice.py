"""The taint lattice: kinds, sources, sanitizers, sinks.

A value's abstract state is the *set* of taint kinds it may carry plus,
inside a function body, the set of formal parameters it may derive
from.  Union is the lattice join; the kind set is finite, so the
interprocedural fixpoint in :mod:`repro.lint.flow.summaries`
terminates.  Each concrete kind carries the witness chain that
introduced it (``time.time() at src/...:42``, ``returned by
repro.x.helper``), which is how findings prove their source→sink path.

Sources mirror the per-module rules they generalize: the DET001 call
table for entropy and clocks, ``id()``/``object.__hash__`` for node
identity (DET003), the DET002 unordered expressions, and float
arithmetic (WALL001).  Sanitizers clear exactly the taint they
canonicalize away: ``sorted()`` makes iteration order a function of the
elements (clears UNORDERED), integer coercion rounds away platform
float drift (clears FLOAT), and the tape layer is the sanctioned
entropy boundary (functions defined in ``repro.runtime.tape`` never
export ENTROPY/CLOCK — a seeded, replayable draw is the *point* of the
tape).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# -- kinds --------------------------------------------------------------

ENTROPY = "entropy"
CLOCK = "clock"
UNORDERED = "unordered"
FLOAT = "float"
IDENTITY = "identity"

KINDS = (ENTROPY, CLOCK, UNORDERED, FLOAT, IDENTITY)

# -- effects (PURE001) --------------------------------------------------

EFFECT_IO = "io"
EFFECT_MUTATION = "mutation"
EFFECT_CLOCK = "clock-read"

EFFECTS = (EFFECT_IO, EFFECT_MUTATION, EFFECT_CLOCK)

#: Longest witness chain kept; deeper flows are elided in the middle.
MAX_CHAIN = 12

Chain = "tuple[str, ...]"


def extend_chain(chain: "tuple[str, ...]", frame: str) -> "tuple[str, ...]":
    """Append ``frame``, eliding the middle of over-long chains."""
    if len(chain) >= MAX_CHAIN:
        return chain[: MAX_CHAIN // 2] + ("...",) + chain[-(MAX_CHAIN // 2 - 1) :] + (frame,)
    return chain + (frame,)


# -- the abstract value -------------------------------------------------


@dataclass(frozen=True)
class ParamFlow:
    """A formal parameter flowing somewhere, minus sanitized kinds."""

    cleared: frozenset = frozenset()
    chain: "tuple[str, ...]" = ()

    def merge(self, other: "ParamFlow") -> "ParamFlow":
        # Less clearing is the conservative join; keep the first chain.
        return ParamFlow(
            cleared=self.cleared & other.cleared,
            chain=self.chain or other.chain,
        )


@dataclass
class Taints:
    """Join-semilattice element: concrete kinds + parameter markers."""

    kinds: "dict[str, tuple[str, ...]]" = field(default_factory=dict)
    params: "dict[int, ParamFlow]" = field(default_factory=dict)

    @classmethod
    def of_param(cls, index: int) -> "Taints":
        return cls(params={index: ParamFlow()})

    @classmethod
    def of_kind(cls, kind: str, witness: str) -> "Taints":
        return cls(kinds={kind: (witness,)})

    def is_empty(self) -> bool:
        return not self.kinds and not self.params

    def union(self, *others: "Taints") -> "Taints":
        kinds = dict(self.kinds)
        params = dict(self.params)
        for other in others:
            for kind, chain in other.kinds.items():
                kinds.setdefault(kind, chain)
            for index, flow in other.params.items():
                params[index] = params[index].merge(flow) if index in params else flow
        return Taints(kinds=kinds, params=params)

    def without(self, cleared: "frozenset | set") -> "Taints":
        """Sanitize: drop the cleared kinds, and record the clearing on
        parameter markers so substituted arguments are sanitized too."""
        if not cleared:
            return self
        cleared = frozenset(cleared)
        return Taints(
            kinds={k: c for k, c in self.kinds.items() if k not in cleared},
            params={
                i: ParamFlow(cleared=flow.cleared | cleared, chain=flow.chain)
                for i, flow in self.params.items()
            },
        )

    def shape(self) -> "tuple":
        """Hashable convergence key: kinds + param masks, chains excluded
        (chains are set once and never grow, so they cannot oscillate)."""
        return (
            tuple(sorted(self.kinds)),
            tuple(sorted((i, tuple(sorted(f.cleared))) for i, f in self.params.items())),
        )


EMPTY = Taints()


# -- sources ------------------------------------------------------------

IDENTITY_CALLS = {"id", "builtins.id", "object.__hash__"}

#: Derived lazily from DET001's tables so the syntactic and flow rules
#: can never disagree on what counts as a source — and lazily because
#: ``repro.lint.rules`` (the package housing those tables) itself
#: imports the flow rules, so a module-level import here would cycle.
_SOURCE_TABLES: "tuple | None" = None


def _source_tables() -> "tuple":
    global _SOURCE_TABLES
    if _SOURCE_TABLES is None:
        from repro.lint.rules.determinism import (
            _BANNED_CALLS,
            _BANNED_PREFIXES,
            _RANDOM_MODULE_OK,
        )

        # "clock" in the DET001 reason means CLOCK; everything else in
        # that table draws entropy (uuid1 mixes both; entropy is the
        # stricter classification and it is banned anyway).
        source_calls = {
            name: (CLOCK if "clock" in reason else ENTROPY)
            for name, reason in _BANNED_CALLS.items()
        }
        source_prefixes = {prefix: ENTROPY for prefix in _BANNED_PREFIXES}
        # Seeded random.Random(seed) is a pure function of its seed.
        _SOURCE_TABLES = (source_calls, source_prefixes, set(_RANDOM_MODULE_OK))
    return _SOURCE_TABLES


def source_kind_of_call(name: str) -> "str | None":
    """Taint kind introduced by a call to dotted ``name``, if any."""
    source_calls, source_prefixes, seeded_ok = _source_tables()
    if name in IDENTITY_CALLS:
        return IDENTITY
    if name in source_calls:
        return source_calls[name]
    for prefix, kind in source_prefixes.items():
        if name.startswith(prefix):
            return kind
    if name.startswith("random.") and name not in seeded_ok:
        return ENTROPY
    return None


# -- sanitizers ---------------------------------------------------------

#: Call name -> taint kinds its result is guaranteed free of.
#: ``sorted`` makes order a function of the elements; the counting /
#: folding builtins are symmetric in argument order; integer coercion
#: produces exact values.
SANITIZER_CALLS: "dict[str, frozenset]" = {
    "sorted": frozenset({UNORDERED}),
    "len": frozenset({UNORDERED, FLOAT}),
    "sum": frozenset({UNORDERED}),
    "min": frozenset({UNORDERED}),
    "max": frozenset({UNORDERED}),
    "any": frozenset({UNORDERED, FLOAT}),
    "all": frozenset({UNORDERED, FLOAT}),
    "int": frozenset({FLOAT}),
    "round": frozenset({FLOAT}),
    "math.floor": frozenset({FLOAT}),
    "math.ceil": frozenset({FLOAT}),
    "math.isqrt": frozenset({FLOAT}),
    "bool": frozenset({FLOAT}),
}

#: Module whose defs never export entropy/clock taint: drawing from a
#: recorded/seeded tape is the sanctioned, replayable randomness.
TAPE_MODULE = "repro.runtime.tape"
TAPE_CLEARS = frozenset({ENTROPY, CLOCK})

#: Modules whose global-state mutation is sanctioned: the view-tree
#: intern tables are content-keyed memoization — every observable
#: output (marks, ranks, canonical child order) is a pure function of
#: the values interned, not of interning order — so functions here do
#: not export the ``mutation`` effect (I/O and clock reads still do).
INTERNING_MODULES = ("repro.views.view_tree",)

#: Attribute calls that read a container *by key*: the result is a
#: function of the container's contents and which key was asked for —
#: the key argument itself is control dependence, exactly like a
#: subscript read, so its taint does not reach the result.  This is
#: what keeps ``cache.get((id(x), depth))`` memo lookups from smearing
#: IDENTITY over the cached values.
KEYED_ACCESS_ATTRS = frozenset({"get", "pop"})


# -- canonical sinks ----------------------------------------------------

#: Method names forming the anonymous-algorithm protocol; their return
#: values are algorithm-visible state (ANON001's sink, and FLOW001's
#: for entropy/clock that bypassed the tape).
ALGORITHM_PROTOCOL = ("init_state", "message", "messages", "transition", "output")

#: Base classes marking a class as an algorithm implementation.
ALGORITHM_BASES = {
    "repro.runtime.algorithm.AnonymousAlgorithm",
    "repro.runtime.port_model.PortAwareAlgorithm",
}


def _stripped(name: str) -> str:
    return name.lstrip("_")


def canonical_sink_label(qualname: str) -> "str | None":
    """Human label if calling ``qualname`` feeds a canonical artifact.

    The sink set is the byte-compared surface of the system: the
    artifact payload encoders, artifact/task key derivation, the
    canonical delta codec, and ViewTree mark construction (marks are
    *the* canonical encoding the total order compares).
    """
    module, _, name = qualname.rpartition(".")
    # Methods: repro.views.view_tree.ViewTree.make -> class-qualified.
    if qualname in (
        "repro.views.view_tree.ViewTree.make",
        "repro.views.view_tree.ViewTree.leaf",
        "repro.views.view_tree._make_ranked",
    ):
        return "a ViewTree mark"
    if module == "repro.artifacts.encoders" and (
        _stripped(name).startswith("encode") or name == "canonical_bytes"
    ):
        return f"canonical encoder {name}()"
    if module == "repro.artifacts.keys" and name in (
        "artifact_key",
        "canonical_spec",
        "payload_digest",
    ):
        return f"artifact key derivation {name}()"
    if module == "repro.experiments.fabric" and name in (
        "task_key",
        "canonical_spec",
    ):
        return f"fabric task key {name}()"
    if module.startswith("repro.dynamic.delta") and (
        _stripped(name).startswith("encode") or name == "as_dict"
    ):
        return f"canonical delta encoding {name}()"
    return None


_CODEC_MODULES = ("repro.artifacts.encoders", "repro.dynamic.delta")


def is_pure_root(qualname: str) -> bool:
    """PURE001 scope: the canonical codec functions themselves —
    module-level ``encode*``/``decode*``/``canonical*`` defs in the
    codec modules plus codec methods (``Delta.as_dict``/``from_dict``)."""
    module, _, name = qualname.rpartition(".")
    if module not in _CODEC_MODULES:
        # Methods of codec-module classes: strip the class segment.
        parent = module.rsplit(".", 1)[0] if "." in module else ""
        if parent not in _CODEC_MODULES:
            return False
    stripped = _stripped(name)
    return (
        stripped.startswith(("encode", "decode", "canonical"))
        or name in ("as_dict", "from_dict")
    )


# -- effect classification ---------------------------------------------

#: Dotted-name prefixes that perform I/O (filesystem, process, network).
IO_PREFIXES = (
    "os.",
    "sys.stdout",
    "sys.stderr",
    "sys.stdin",
    "subprocess.",
    "shutil.",
    "socket.",
    "tempfile.",
    "pathlib.Path.write",
    "pathlib.Path.read",
)

IO_CALLS = {"open", "print", "input", "builtins.open", "builtins.print"}

#: ``os.path`` is pure string manipulation; carve it back out.
IO_EXEMPT_PREFIXES = ("os.path.",)

#: Attribute-call names that write or read external state when we could
#: not resolve the receiver (conservative, scoped to PURE001 roots).
IO_ATTR_CALLS = {
    "write",
    "writelines",
    "write_text",
    "write_bytes",
    "read_text",
    "read_bytes",
    "flush",
    "fsync",
    "mkdir",
    "unlink",
    "touch",
}

#: In-place mutators; an effect only when the receiver is non-local
#: (module-level) state.
MUTATING_ATTR_CALLS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}


def io_effect_of_call(name: "str | None", attr: "str | None") -> bool:
    """True if a call to dotted ``name`` (or unresolved ``.attr()``)
    performs I/O."""
    if name is not None:
        if name in IO_CALLS:
            return True
        if any(name.startswith(p) for p in IO_EXEMPT_PREFIXES):
            return False
        if any(name.startswith(p) for p in IO_PREFIXES):
            return True
    if attr is not None and attr in IO_ATTR_CALLS:
        return True
    return False
