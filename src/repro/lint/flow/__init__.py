"""Interprocedural taint analysis over the ``src/repro`` tree.

The per-module rules (DET/ENG/WALL) prove the determinism and anonymity
contracts *syntactically*: a literal ``time.time()`` call in the wrong
file is flagged where it stands.  They cannot see a clock value
laundered through three helpers into a canonical encoder, or node
identity reaching a transition function through an aliased
intermediate.  This package escalates to a *flow-wise* proof, the same
move the paper's coverings make from local conditions to global
structure:

1. :mod:`repro.lint.flow.callgraph` builds a whole-program call graph —
   module-qualified function and method nodes, edges resolved through
   the existing :class:`repro.lint.astutil.ImportMap` plus
   attribute-call heuristics (``self``/``super()``/constructor-typed
   locals/unique method names), with every unresolved call *reported*,
   never silently dropped.
2. :mod:`repro.lint.flow.lattice` defines the taint kinds (entropy,
   clock, unordered iteration, float arithmetic, node identity), the
   source and sanitizer tables, and the canonical-sink classifier.
3. :mod:`repro.lint.flow.summaries` computes one summary per function —
   which taints its return value carries, which parameters flow to its
   return or onward into a sink, and which effects (I/O, non-local
   mutation, clocks) it transitively performs — and iterates them to a
   fixpoint, so the analysis is linear passes over summaries rather
   than path enumeration.
4. :mod:`repro.lint.flow.rules` registers the FLOW/ANON/PURE rules on
   the existing chassis; every finding carries a concrete source→sink
   witness call chain (JSON report schema v2).

Entry point: :func:`build_program` turns the analyzer's parsed
``ModuleContext`` list into a :class:`FlowProgram` shared by all
program rules in one run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.flow.callgraph import CallGraph, build_call_graph
from repro.lint.flow.summaries import (
    FunctionSummary,
    ReturnEvent,
    SinkEvent,
    collect_events,
    compute_summaries,
)

__all__ = [
    "CallGraph",
    "FlowProgram",
    "FunctionSummary",
    "ReturnEvent",
    "SinkEvent",
    "build_program",
]


@dataclass
class FlowProgram:
    """Everything the flow rules need, computed once per lint run."""

    call_graph: CallGraph
    summaries: "dict[str, FunctionSummary]"
    sink_events: "list[SinkEvent]"
    return_events: "list[ReturnEvent]"


def build_program(modules) -> FlowProgram:
    """Index ``modules`` (analyzer ``ModuleContext``s under ``src/``),
    run the summary fixpoint, and collect the sink/return event log."""
    graph = build_call_graph(modules)
    summaries = compute_summaries(graph)
    sink_events, return_events = collect_events(graph, summaries)
    return FlowProgram(
        call_graph=graph,
        summaries=summaries,
        sink_events=sink_events,
        return_events=return_events,
    )
