"""Whole-program flow rules: FLOW001/FLOW002, ANON001, PURE001.

These are the interprocedural escalation of the syntactic DET/WALL
rules.  DET001 flags a literal ``time.time()`` in the wrong file;
FLOW001 proves no clock value reaches a canonical encoder *through any
call chain*.  Each finding anchors at the call site (or ``return``)
where the tainted value crosses into the sink, and carries the full
source→sink witness chain so the report is a proof sketch, not a
pattern match.

Everything runs off one shared :class:`repro.lint.flow.FlowProgram`
built by the analyzer: the rules here only translate its event log
into findings, so selecting all four costs one fixpoint, not four.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.flow import lattice
from repro.lint.registry import ProgramRule, register

__all__ = [
    "AlgorithmStateIdentity",
    "EncoderPurity",
    "EntropyReachesCanonical",
    "UnorderedReachesCanonical",
]


def _event_finding(rule: ProgramRule, event, message: str) -> Finding:
    return Finding(
        rule=rule.rule_id,
        severity=rule.severity,
        path=event.function.relpath,
        line=event.lineno,
        col=event.col,
        message=message,
        witness=event.chain,
    )


@register
class EntropyReachesCanonical(ProgramRule):
    """An entropy or clock value flows (through any number of calls)
    into a canonical sink or into algorithm-visible state.  Randomness
    must cross into the algorithm only through the tape layer, and must
    never reach bytes that are compared or content-addressed."""

    rule_id = "FLOW001"
    severity = Severity.ERROR
    description = (
        "entropy/clock value flows into a canonical encoding, key "
        "derivation, or algorithm state (bypassing the tape layer)"
    )
    _kinds = (lattice.ENTROPY, lattice.CLOCK)

    def check_program(self, program) -> Iterator[Finding]:
        for event in program.sink_events:
            if event.kind in self._kinds:
                yield _event_finding(
                    self,
                    event,
                    f"{event.kind} value reaches {event.sink_label}; "
                    "draw through the tape layer instead",
                )
        for event in program.return_events:
            if event.kind in self._kinds:
                yield _event_finding(
                    self,
                    event,
                    f"{event.kind} value returned as algorithm state by "
                    f"{event.function.qualname}(); only tape draws may "
                    "feed algorithm state",
                )


@register
class UnorderedReachesCanonical(ProgramRule):
    """A value derived from unordered set/dict iteration reaches a
    canonical sink without passing through ``sorted()`` (or another
    order-erasing fold).  The emitted bytes would then depend on hash
    seeding — the exact nondeterminism ``make hashseed-smoke`` probes
    dynamically."""

    rule_id = "FLOW002"
    severity = Severity.ERROR
    description = (
        "unordered-iteration value reaches a canonical encoding "
        "uncleansed (no sorted()/order-erasing fold on the path)"
    )

    def check_program(self, program) -> Iterator[Finding]:
        for event in program.sink_events:
            if event.kind == lattice.UNORDERED:
                yield _event_finding(
                    self,
                    event,
                    f"unordered-iteration value reaches {event.sink_label} "
                    "without sorted()",
                )


@register
class AlgorithmStateIdentity(ProgramRule):
    """A Python object identity (``id()``/``object.__hash__``) flows
    into algorithm-visible state or canonical bytes.  In an anonymous
    network there are no identifiers to leak: the paper's algorithms
    distinguish nodes only by their views, and ``id()`` values are both
    an anonymity violation and unstable across runs."""

    rule_id = "ANON001"
    severity = Severity.ERROR
    description = (
        "node/object identity (id(), object.__hash__) flows into "
        "algorithm state or a canonical encoding"
    )

    def check_program(self, program) -> Iterator[Finding]:
        for event in program.sink_events:
            if event.kind == lattice.IDENTITY:
                yield _event_finding(
                    self,
                    event,
                    f"object identity reaches {event.sink_label}; "
                    "anonymous algorithms may not observe identities",
                )
        for event in program.return_events:
            if event.kind == lattice.IDENTITY:
                yield _event_finding(
                    self,
                    event,
                    "object identity returned as algorithm state by "
                    f"{event.function.qualname}(); nodes are "
                    "distinguishable only by their views",
                )


@register
class EncoderPurity(ProgramRule):
    """The canonical codec functions (artifact encoders, delta codec)
    must be pure: transitively free of I/O, non-local mutation and
    wall-clock reads, so the same value encodes to the same bytes in
    every process that ever runs."""

    rule_id = "PURE001"
    severity = Severity.ERROR
    description = (
        "canonical encoder/decoder transitively performs I/O, mutates "
        "non-local state, or reads the clock"
    )

    def check_program(self, program) -> Iterator[Finding]:
        for qualname in sorted(program.call_graph.functions):
            if not lattice.is_pure_root(qualname):
                continue
            fi = program.call_graph.functions[qualname]
            summary = program.summaries.get(qualname)
            if summary is None:
                continue
            for effect in sorted(summary.effects):
                yield Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=fi.relpath,
                    line=fi.lineno,
                    col=fi.node.col_offset + 1,
                    message=(
                        f"canonical codec {qualname}() transitively "
                        f"performs {effect}"
                    ),
                    witness=summary.effects[effect],
                )
