"""DET003 — the anonymity contract of algorithm-visible code.

The paper's model (Section 1.1) gives an anonymous algorithm exactly
three inputs: its node's label, its degree, and the canonical multiset
(or port-indexed tuple) of received messages, plus the explicit random
bits.  Python makes it easy to cheat: ``id(node)`` is a per-process
unique identifier, and ``object.__hash__`` leaks the same identity.
An algorithm that consults either is no longer anonymous — it breaks
fiber symmetry (two nodes in the same fiber of a covering must behave
identically), which is the property every lifting/derandomization
theorem in the reproduction rests on.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import call_name
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register


@register
class NoIdentityInAlgorithms(Rule):
    """DET003: algorithms see labels and ports, never object identity."""

    rule_id = "DET003"
    severity = Severity.ERROR
    description = (
        "id() / object.__hash__ in algorithm-visible code — anonymous "
        "algorithms may only use labels, degrees, ports and tape bits"
    )
    # Algorithm-visible code: the algorithm zoo plus the state/message
    # protocol modules an Algorithm subclass runs against.
    include = (
        "src/repro/algorithms/",
        "src/repro/runtime/algorithm.py",
        "src/repro/runtime/composition.py",
        "src/repro/runtime/port_model.py",
    )

    def check(self, module) -> Iterator[Finding]:
        # A call to object.__hash__ reports once (parents are visited
        # before children, so the Call claims its Attribute func).
        claimed: set = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = call_name(module.imports, node)
                if name == "object.__hash__":
                    claimed.add(id(node.func))
                if name == "id":
                    yield self.finding(
                        module,
                        node,
                        "id() exposes per-process object identity; anonymous "
                        "algorithms must key on canonical values "
                        "(labels, sort_key(), encodings) instead",
                    )
                elif name == "object.__hash__":
                    yield self.finding(
                        module,
                        node,
                        "object.__hash__ leaks object identity into "
                        "algorithm-visible state",
                    )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "__hash__"
                and isinstance(node.value, ast.Name)
                and node.value.id == "object"
                and id(node) not in claimed
            ):
                yield self.finding(
                    module,
                    node,
                    "object.__hash__ leaks object identity into "
                    "algorithm-visible state",
                )
