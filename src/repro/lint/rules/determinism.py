"""DET001/DET002 — the replay-determinism contracts.

The reproduction's headline dynamic guarantee is byte-identical replay:
the same seed (or the same recorded bit assignment) reproduces the same
execution, the same canonical artifacts, the same JSON. Two static
hazards can break it:

* an *unseeded* randomness or wall-clock source anywhere outside the
  tape layer (DET001) — every random bit must flow through a
  :class:`repro.runtime.tape.BitSource` so it can be recorded and
  replayed, and every timestamp must stay out of canonical output;
* iteration order of an unordered collection leaking into a canonical
  artifact (DET002) — ``set`` order depends on ``PYTHONHASHSEED`` for
  strings, and dict views merely echo incidental construction order.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import call_name, is_unordered_expr, iterable_of
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

#: Dotted call targets that draw entropy or wall-clock time.  Module
#: level ``random.*`` functions share one hidden global RNG; anything
#: below bypasses the seeded-tape model entirely.
_BANNED_CALLS = {
    "os.urandom": "draws OS entropy",
    "uuid.uuid1": "mixes host state and wall clock",
    "uuid.uuid4": "draws OS entropy",
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "time.monotonic": "reads a clock",
    "time.monotonic_ns": "reads a clock",
    "time.perf_counter": "reads a clock",
    "time.perf_counter_ns": "reads a clock",
    "time.process_time": "reads a clock",
    "time.process_time_ns": "reads a clock",
    "datetime.datetime.now": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
    "datetime.datetime.today": "reads the wall clock",
    "datetime.date.today": "reads the wall clock",
    "random.SystemRandom": "draws OS entropy",
}

_BANNED_PREFIXES = {
    "secrets.": "draws OS entropy",
}

#: ``random.Random(seed)`` is the sanctioned way to build deterministic
#: generators (graph builders, sweeps); only the *module-level*
#: functions (global hidden state) and an unseeded ``Random()`` are
#: nondeterminism sources.
_RANDOM_MODULE_OK = {"random.Random"}


@register
class NoNondeterminismSources(Rule):
    """DET001: randomness and clocks must flow through the tape layer."""

    rule_id = "DET001"
    severity = Severity.ERROR
    description = (
        "nondeterminism source (module-level random, secrets, uuid1/4, "
        "os.urandom, wall clocks) outside the tape layer and benchmarks"
    )
    # The tape layer is the one sanctioned entropy boundary; benchmark
    # timing code measures wall time by design.
    exclude = (
        "src/repro/runtime/tape.py",
        "benchmarks/",
    )
    #: Paths where *clock* reads are display-only by construction (the
    #: examples print human-facing timings); entropy stays banned.  In
    #: library code every clock read needs a per-line justification
    #: (a repro-lint disable=RULE comment), see docs/LINT.md.
    clock_exempt = ("examples/",)

    def check(self, module) -> Iterator[Finding]:
        clocks_ok = any(
            module.relpath == pat or module.relpath.startswith(pat.rstrip("/") + "/")
            for pat in self.clock_exempt
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(module.imports, node)
            if name is None:
                continue
            if clocks_ok and name.startswith(("time.", "datetime.")):
                continue
            reason = None
            if name in _BANNED_CALLS:
                reason = _BANNED_CALLS[name]
            elif name.startswith("random.") and name not in _RANDOM_MODULE_OK:
                reason = "uses the hidden module-level RNG"
            elif name == "random.Random" and not (node.args or node.keywords):
                reason = "unseeded Random() seeds itself from OS entropy"
            else:
                for prefix, why in _BANNED_PREFIXES.items():
                    if name.startswith(prefix):
                        reason = why
                        break
            if reason is not None:
                remedy = (
                    "keep clock reads out of library code or justify the "
                    "metrics-only read with a suppression comment"
                    if "clock" in reason
                    else "route randomness through repro.runtime.tape "
                    "(BitSource) or take an explicit seed"
                )
                yield self.finding(
                    module, node, f"call to {name}() {reason}; {remedy}"
                )


#: Order-sensitive sinks: constructs whose output depends on the
#: iteration order of their (single) iterable argument.
_ORDER_SENSITIVE_CALLS = {"tuple", "list", "enumerate", "iter", "next", "reversed"}

#: Order-insensitive consumers: iterating an unordered collection into
#: these is fine (sorted() is the sanctioned canonicalizer; the others
#: are symmetric in their argument order).
_ORDER_INSENSITIVE_CALLS = {
    "sorted", "len", "sum", "min", "max", "any", "all",
    "set", "frozenset", "dict", "Counter", "collections.Counter",
}


@register
class NoUnorderedIterationIntoCanonicalArtifacts(Rule):
    """DET002: canonical artifacts must not inherit set/dict order."""

    rule_id = "DET002"
    severity = Severity.ERROR
    description = (
        "iteration over an unordered collection (set, dict view) feeding "
        "an order-sensitive canonical artifact; wrap in sorted(...)"
    )
    # The layers that produce canonical artifacts: view encodings,
    # factor/quotient graphs, graph encodings/canonical forms (the
    # src/repro/graphs/ prefix deliberately covers the CSR array kernels
    # in graphs/csr.py — their dense numbering is canonical), the
    # analysis tables persisted into experiment JSON, and the dynamic
    # layer (delta logs and churn batches are canonical, replayable
    # values; maintained view maps feed byte-compared encodings).
    include = (
        "src/repro/views/",
        "src/repro/factor/",
        "src/repro/graphs/",
        "src/repro/analysis/",
        "src/repro/dynamic/",
    )

    def check(self, module) -> Iterator[Finding]:
        # ast.walk visits parents before their children, so a sink call
        # claims its comprehension argument before the comprehension is
        # visited on its own — one finding per construct, not two.
        claimed: set = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, claimed)
            elif isinstance(node, ast.For):
                yield from self._check_loop(module, node, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if id(node) in claimed:
                    continue
                # Loops *inside* list/generator comprehensions are
                # order-sensitive in their product.
                for gen in node.generators:
                    yield from self._check_loop(module, node, gen.iter, comp=True)

    def _check_call(self, module, call: ast.Call, claimed: set) -> Iterator[Finding]:
        name = call_name(module.imports, call)
        if name in _ORDER_INSENSITIVE_CALLS:
            # sorted(x for x in {…}) and friends consume unordered input
            # symmetrically; their comprehension argument is sanctioned.
            for arg in call.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    claimed.add(id(arg))
            return
        sink = None
        if name in _ORDER_SENSITIVE_CALLS:
            sink = f"{name}(...)"
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "join"
            and isinstance(call.func.value, ast.Constant)
            and isinstance(call.func.value.value, str)
        ):
            sink = "str.join(...)"
        if sink is None or not call.args:
            return
        arg = call.args[0]
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            claimed.add(id(arg))
        source = is_unordered_expr(iterable_of(arg), module.imports)
        if source is not None:
            yield self.finding(
                module,
                call,
                f"{sink} over {source}: iteration order is not canonical; "
                "wrap the iterable in sorted(...) with a total key",
            )

    def _check_loop(
        self, module, node, iter_expr: ast.AST, comp: bool = False
    ) -> Iterator[Finding]:
        # Plain `for` loops over dict views are overwhelmingly
        # order-insensitive (building dicts/sets, accumulating counts),
        # so only genuinely unordered *set* iteration is flagged there;
        # dict views are flagged at order-sensitive sinks above.
        source = is_unordered_expr(iter_expr, module.imports)
        if source is None or "dict view" in source:
            return
        where = "comprehension" if comp else "for loop"
        yield self.finding(
            module,
            node,
            f"{where} iterates {source}: set order depends on PYTHONHASHSEED; "
            "wrap the iterable in sorted(...) with a total key",
        )
