"""ENG001 — the unified-kernel boundary.

PR 3 collapsed every execution path onto one round kernel
(:mod:`repro.runtime.engine`); the ruff TID251 banned-api keeps the
legacy scheduler *names* from coming back.  ENG001 is its semantic
successor: it also rejects reimplementing the kernel — constructing
delivery disciplines or engines directly, reaching into engine
internals, or calling the per-round protocol methods
(``transition`` / ``emit`` / ``inbox`` / ``step``) from library code.
Everything outside the runtime (and the fault layer, which wraps
delivery by design) must go through
:func:`repro.runtime.engine.execute`, so that policies, metrics,
tracing and fault injection apply uniformly.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import call_name
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

#: Kernel classes whose construction is reserved to the runtime.
_RESERVED_CLASSES = {
    "repro.runtime.engine.ExecutionEngine": "ExecutionEngine",
    "repro.runtime.engine.BroadcastDelivery": "BroadcastDelivery",
    "repro.runtime.engine.PortDelivery": "PortDelivery",
    "repro.runtime.ExecutionEngine": "ExecutionEngine",
    "repro.runtime.BroadcastDelivery": "BroadcastDelivery",
    "repro.runtime.PortDelivery": "PortDelivery",
    "repro.runtime.scheduler.SynchronousScheduler": "SynchronousScheduler",
    "repro.runtime.SynchronousScheduler": "SynchronousScheduler",
    "repro.runtime.port_model.PortScheduler": "PortScheduler",
    "repro.runtime.PortScheduler": "PortScheduler",
}

#: Per-round protocol methods: calling these outside the kernel means
#: rounds are being driven (or emulated) somewhere the policy, metrics
#: and fault machinery cannot see.
_ROUND_METHODS = ("transition", "emit", "inbox")

#: Engine internals; touching them from outside is state mutation the
#: kernel cannot account for.
_PRIVATE_ATTRS = ("_states", "_outputs", "_tapes", "_rounds", "_delivery")


def _is_super_call(node: ast.AST) -> bool:
    """``super().transition(...)`` is an algorithm override delegating
    upward — algorithm code, not external round-driving."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
    )


@register
class EngineBoundary(Rule):
    """ENG001: rounds run inside repro.runtime.engine, nowhere else."""

    rule_id = "ENG001"
    severity = Severity.ERROR
    description = (
        "per-round state mutation or delivery construction outside "
        "repro.runtime.engine — use repro.runtime.engine.execute()"
    )
    include = ("src/", "benchmarks/", "examples/")
    # The runtime owns the kernel; the fault layer wraps delivery and
    # tapes by design (docs/FAULTS.md).  The dynamic layer deliberately
    # stays IN scope: its hook swaps graphs through the public
    # engine.swap_graph() and never touches rounds or delivery itself.
    exclude = (
        "src/repro/runtime/",
        "src/repro/faults/",
    )

    def check(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = call_name(module.imports, node)
                if name in _RESERVED_CLASSES:
                    yield self.finding(
                        module,
                        node,
                        f"direct construction of {_RESERVED_CLASSES[name]}; "
                        "executions are built by repro.runtime.engine.execute() "
                        "so policy/metrics/fault injection apply uniformly",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ROUND_METHODS
                    and not _is_super_call(node.func.value)
                ):
                    yield self.finding(
                        module,
                        node,
                        f".{node.func.attr}() drives a round outside the "
                        "kernel; only repro.runtime.engine may call the "
                        "per-round protocol",
                    )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in _PRIVATE_ATTRS
                and not (
                    isinstance(node.value, ast.Name) and node.value.id == "self"
                )
            ):
                yield self.finding(
                    module,
                    node,
                    f"access to engine internal {node.attr!r} outside the "
                    "runtime; use the public ExecutionResult/metrics API",
                )
