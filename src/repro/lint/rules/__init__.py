"""Rule modules; importing this package populates the registry."""

from repro.lint.rules import anonymity, determinism, engine, flow, wallclock

__all__ = ["anonymity", "determinism", "engine", "flow", "wallclock"]
