"""Rule modules; importing this package populates the registry."""

from repro.lint.rules import anonymity, determinism, engine, wallclock

__all__ = ["anonymity", "determinism", "engine", "wallclock"]
