"""WALL001 — canonical encoders are exact, integer/string-pure functions.

The total order behind A* (paper Section 3.1) compares canonical view
encodings byte for byte; Norris/Theorem 3 equivalences compare ranked
trees structurally.  Any float that sneaks into those code paths makes
"equal" platform-dependent (x87 vs SSE, -ffast-math, accumulated
rounding), and any clock makes it time-dependent.  The encoder layer
therefore admits only integer and string arithmetic: no float
literals, no ``float(...)``, no true division, no ``time``/``datetime``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import call_name
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

_CLOCK_PREFIXES = ("time.", "datetime.")


@register
class NoWallClockOrFloatsInEncoders(Rule):
    """WALL001: canonical encoders use exact arithmetic only."""

    rule_id = "WALL001"
    severity = Severity.ERROR
    description = (
        "wall-clock read or float arithmetic inside a canonical encoder "
        "(view trees, graph encodings, factor graphs)"
    )
    include = (
        "src/repro/views/",
        "src/repro/graphs/csr.py",
        "src/repro/graphs/encoding.py",
        "src/repro/graphs/isomorphism.py",
        "src/repro/factor/",
        # The artifact layer's canonical byte encoders and key
        # derivation: payload equality is byte equality, so they get the
        # same exactness contract.  (The store/service modules are
        # serving machinery, not encoders — they may time and batch.)
        "src/repro/artifacts/encoders.py",
        "src/repro/artifacts/keys.py",
        "src/repro/artifacts/specs.py",
        # The dynamic overlay rebuilds canonical snapshots (ports,
        # layers) that downstream encoders byte-compare.  The plan /
        # schedule / maintainer modules stay out for the same reason
        # faults/plan.py does: churn rates are floats by design and
        # schedule decisions use true division on hash fractions.
        "src/repro/dynamic/graph.py",
    )

    def check(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = call_name(module.imports, node)
                if name is None:
                    continue
                if name.startswith(_CLOCK_PREFIXES):
                    yield self.finding(
                        module,
                        node,
                        f"{name}() reads a clock inside a canonical encoder",
                    )
                elif name == "float":
                    yield self.finding(
                        module,
                        node,
                        "float(...) in a canonical encoder: encodings must "
                        "compare exactly on every platform; keep integers",
                    )
            elif isinstance(node, ast.Constant) and isinstance(node.value, float):
                yield self.finding(
                    module,
                    node,
                    f"float literal {node.value!r} in a canonical encoder; "
                    "use integer or string arithmetic",
                )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield self.finding(
                    module,
                    node,
                    "true division yields a float in a canonical encoder; "
                    "use // (exact) instead",
                )
