"""Invariant analyzer — static enforcement of the repo's contracts.

Every guarantee this reproduction makes is ultimately a *determinism*
or *anonymity* contract: seeded runs replay byte-identically, canonical
view encodings are pure functions of the labeled graph, and algorithms
see only labels, degrees and port numbers — never node identity.  The
test suite enforces those contracts dynamically (golden files, replay
gates, fault differentials); this package enforces them *statically*,
at review time, by walking the AST of every source file and rejecting
the constructs that break them:

========  ==========================================================
rule      invariant protected
========  ==========================================================
DET001    no nondeterminism sources (module-level ``random``,
          ``secrets``, ``uuid1/4``, wall clocks, ``os.urandom``)
          outside the tape layer and the benchmark timing code
DET002    no iteration over unordered collections (``set``,
          ``dict.values()``) feeding order-sensitive canonical
          artifacts in the view/factor/graph/analysis layers
DET003    no ``id()`` / ``object.__hash__`` in algorithm-visible code
          (anonymity: labels and ports only, per paper Section 1.1)
ENG001    no per-round state mutation or delivery construction
          outside :mod:`repro.runtime.engine` (the unified kernel)
WALL001   no wall-clock or float arithmetic inside canonical encoders
FLOW001   (interprocedural) no entropy/clock value *flows* into a
          canonical encoder or algorithm state, across any number of
          calls and assignments
FLOW002   (interprocedural) no unordered-iteration order flows into a
          canonical encoder without passing through ``sorted()``
ANON001   (interprocedural) no ``id()``-derived value flows into
          algorithm-visible state or a view-tree mark
PURE001   canonical codecs are transitively free of I/O, non-local
          mutation and clock reads
LINT000   (framework) file failed to parse
LINT001   (framework) suppression comment that suppresses nothing
========  ==========================================================

The ``FLOW``/``ANON``/``PURE`` families run on a whole-program call
graph with per-function taint summaries (:mod:`repro.lint.flow`);
their findings carry a *witness chain* — the concrete source-to-sink
call path — in the JSON report and the rendered output.

Findings can be silenced line-by-line with a justified comment::

    foo = list(groups.values())  # repro-lint: disable=DET002 -- insertion order is node order

or acknowledged wholesale in a baseline file (``--baseline``), which
records known findings so only *new* violations fail the gate.  See
``docs/LINT.md`` for the rule catalogue and the suppression policy.

Command line::

    python -m repro.lint                  # src/ benchmarks/ examples/
    python -m repro.lint tests --warn-only
    python -m repro.lint --json report.json --baseline LINT_BASELINE.json
"""

from repro.lint.analyzer import LintReport, run_lint
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, register

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "register",
    "run_lint",
]
