"""Finding records and severities for the invariant analyzer."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any


class Severity:
    """Severity levels, ordered; only ``ERROR`` findings fail the gate."""

    ERROR = "error"
    WARNING = "warning"

    ALL = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is always relative to the analysis root with ``/``
    separators, so fingerprints and JSON reports are machine-portable.
    The ``fingerprint`` identifies the finding for baseline matching;
    it deliberately excludes the line number so that unrelated edits
    moving a known finding up or down do not break the baseline.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    baselined: bool = field(default=False, compare=False)
    #: Interprocedural witness: the source→sink call chain proving the
    #: finding (flow rules only; empty for single-site rules).  Not part
    #: of the fingerprint — a chain may reroute through different
    #: helpers while the violation it proves stays the same.
    witness: tuple[str, ...] = field(default=(), compare=False)

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{self.message}".encode()
        ).hexdigest()
        return digest[:16]

    def with_baselined(self) -> "Finding":
        return Finding(
            rule=self.rule,
            severity=self.severity,
            path=self.path,
            line=self.line,
            col=self.col,
            message=self.message,
            baselined=True,
            witness=self.witness,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
            "witness": list(self.witness),
        }

    def render(self) -> str:
        tag = " [baselined]" if self.baselined else ""
        head = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}]{tag} {self.message}"
        )
        if not self.witness:
            return head
        chain = "\n".join(f"    {i + 1}. {hop}" for i, hop in enumerate(self.witness))
        return f"{head}\n{chain}"
