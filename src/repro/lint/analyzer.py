"""File walking, suppression handling and the lint driver."""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import Any

from repro.lint.astutil import ImportMap
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity

#: JSON report schema version; bump on breaking shape changes.
#: v2: findings carry a ``witness`` call chain (flow rules), reports a
#: ``call_graph`` summary block when one was requested.
REPORT_SCHEMA_VERSION = 2

PARSE_ERROR_RULE = "LINT000"
UNUSED_SUPPRESSION_RULE = "LINT001"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*"
    r"(all|[A-Za-z]+\d+(?:\s*,\s*[A-Za-z]+\d+)*)"
)


@dataclass
class Suppression:
    """One ``# repro-lint: disable=...`` comment."""

    line: int
    rules: tuple[str, ...]  # () means `all`
    file_wide: bool
    standalone: bool  # the comment is the whole line
    used: bool = False

    def covers(self, rule_id: str, line: int) -> bool:
        if self.rules and rule_id.upper() not in self.rules:
            return False
        if self.file_wide:
            return True
        # A trailing comment covers its own line; a standalone comment
        # covers the line below it (for statements too long to share a
        # line with their justification).
        return line == self.line or (self.standalone and line == self.line + 1)


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.AST
    imports: ImportMap
    lines: list[str] = field(default_factory=list)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def _scan_suppressions(source: str) -> list[Suppression]:
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if not match:
            continue
        kind, spec = match.groups()
        rules: tuple[str, ...] = ()
        if spec.lower() != "all":
            rules = tuple(r.strip().upper() for r in spec.split(","))
        suppressions.append(
            Suppression(
                line=token.start[0],
                rules=rules,
                file_wide=(kind == "disable-file"),
                standalone=(token.line.strip() == token.string.strip()),
            )
        )
    return suppressions


def _collect_files(paths: Sequence[Path]) -> list[Path]:
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


@dataclass
class LintReport:
    """The outcome of one analyzer run."""

    root: str
    paths: list[str]
    findings: list[Finding]
    expired_baseline: list[dict[str, Any]]
    suppressed_count: int
    files_checked: int
    rules: list[dict[str, str]]
    warn_only: bool = False
    baseline_path: str | None = None
    #: ``FlowProgram.call_graph.as_dict()`` when the run was asked to
    #: produce one (``--call-graph``); ``None`` otherwise.
    call_graph: dict[str, Any] | None = None

    @property
    def new_errors(self) -> list[Finding]:
        return [
            f
            for f in self.findings
            if f.severity == Severity.ERROR and not f.baselined
        ]

    @property
    def counts(self) -> dict[str, int]:
        return {
            "error": sum(
                1
                for f in self.findings
                if f.severity == Severity.ERROR and not f.baselined
            ),
            "warning": sum(
                1
                for f in self.findings
                if f.severity == Severity.WARNING and not f.baselined
            ),
            "baselined": sum(1 for f in self.findings if f.baselined),
            "suppressed": self.suppressed_count,
            "files": self.files_checked,
        }

    @property
    def exit_code(self) -> int:
        """0 = gate passes, 1 = new error findings (unless warn-only)."""
        if self.warn_only:
            return 0
        return 1 if self.new_errors else 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "tool": "repro-lint",
            "root": self.root,
            "paths": self.paths,
            "rules": self.rules,
            "counts": self.counts,
            "findings": [f.as_dict() for f in self.findings],
            "baseline": {
                "path": self.baseline_path,
                "expired": self.expired_baseline,
            },
            "call_graph": (
                None
                if self.call_graph is None
                else self.call_graph.get("stats", {})
            ),
            "exit_code": self.exit_code,
        }

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        for entry in self.expired_baseline:
            lines.append(
                f"{entry['path']}: baseline entry for {entry['rule']} no longer "
                f"matches any finding (stale; rewrite with --write-baseline): "
                f"{entry['message']}"
            )
        counts = self.counts
        summary = (
            f"repro-lint: {counts['files']} files, "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['baselined']} baselined, {counts['suppressed']} suppressed"
        )
        if self.warn_only and (counts["error"] or counts["warning"]):
            summary += " [warn-only: exit 0]"
        lines.append(summary)
        return "\n".join(lines)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[Path],
    root: Path,
    *,
    rules: Iterable | None = None,
    select: Sequence[str] = (),
    baseline: Baseline | None = None,
    warn_only: bool = False,
    report_unused_suppressions: bool | None = None,
    want_call_graph: bool = False,
) -> LintReport:
    """Analyze ``paths`` (files or directories) relative to ``root``.

    ``rules`` overrides the registry (used by the framework tests);
    ``select`` filters registered rules by id or family prefix.
    ``baseline`` marks known findings so only new ones fail the gate.
    Unused-suppression warnings (LINT001) default to full-registry runs
    only — a filtered run legitimately leaves other rules' suppressions
    unexercised.  ``want_call_graph`` attaches the whole-program call
    graph dump to the report even when no flow rule is selected.

    Per-module rules run file by file; whole-program rules
    (:class:`repro.lint.registry.ProgramRule`) run once over the
    interprocedural :class:`repro.lint.flow.FlowProgram` built from the
    analyzed ``src/`` files, and their findings pass through the same
    suppression, fingerprint and baseline machinery.
    """
    from repro.lint.registry import all_rules

    if report_unused_suppressions is None:
        report_unused_suppressions = rules is None and not select
    active = list(rules) if rules is not None else all_rules(select)
    module_rules = [r for r in active if not getattr(r, "is_program_rule", False)]
    program_rules = [r for r in active if getattr(r, "is_program_rule", False)]

    findings: list[Finding] = []
    suppressed = 0
    files = _collect_files([Path(p) for p in paths])
    modules: list[ModuleContext] = []
    suppressions_by_path: dict[str, list[Suppression]] = {}

    # Pass 1: parse everything, so whole-program rules see one tree.
    for path in files:
        relpath = _relpath(path, root)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    severity=Severity.ERROR,
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        modules.append(
            ModuleContext(
                path=path,
                relpath=relpath,
                source=source,
                tree=tree,
                imports=ImportMap(tree),
                lines=source.splitlines(),
            )
        )
        suppressions_by_path[relpath] = _scan_suppressions(source)

    def admit(finding: Finding) -> None:
        nonlocal suppressed
        covering = [
            s
            for s in suppressions_by_path.get(finding.path, ())
            if s.covers(finding.rule, finding.line)
        ]
        if covering:
            for s in covering:
                s.used = True
            suppressed += 1
        else:
            findings.append(finding)

    # Pass 2: per-module rules.
    for module in modules:
        for rule in module_rules:
            if not rule.applies_to(module.relpath):
                continue
            for finding in rule.check(module):
                admit(finding)

    # Pass 3: whole-program (flow) rules over the src/ tree.
    call_graph_dump: dict[str, Any] | None = None
    if program_rules or want_call_graph:
        from repro.lint.flow import build_program

        program = build_program(
            [m for m in modules if m.relpath.startswith("src/")]
        )
        if want_call_graph:
            call_graph_dump = program.call_graph.as_dict()
        for rule in program_rules:
            for finding in rule.check_program(program):
                admit(finding)

    for relpath, suppressions in suppressions_by_path.items():
        for s in suppressions:
            if not s.used and report_unused_suppressions:
                findings.append(
                    Finding(
                        rule=UNUSED_SUPPRESSION_RULE,
                        severity=Severity.WARNING,
                        path=relpath,
                        line=s.line,
                        col=1,
                        message=(
                            "suppression comment matches no finding "
                            f"(rules: {', '.join(s.rules) or 'all'}); remove it"
                        ),
                    )
                )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    expired: list[dict[str, Any]] = []
    if baseline is not None:
        active_ids = {r.rule_id for r in active}
        active_ids.update((PARSE_ERROR_RULE, UNUSED_SUPPRESSION_RULE))
        findings, expired = baseline.apply(findings, active_rules=active_ids)
    return LintReport(
        root=str(root),
        paths=[_relpath(Path(p), root) for p in paths],
        findings=findings,
        expired_baseline=expired,
        suppressed_count=suppressed,
        files_checked=len(files),
        rules=[
            {
                "id": r.rule_id,
                "severity": r.severity,
                "description": r.description,
            }
            for r in sorted(active, key=lambda r: r.rule_id)
        ],
        warn_only=warn_only,
        baseline_path=str(baseline.path) if baseline is not None else None,
        call_graph=call_graph_dump,
    )
