"""Shared AST helpers for the invariant rules.

The rules reason about *qualified names*: ``perf_counter()`` after
``from time import perf_counter`` and ``t.perf_counter()`` after
``import time as t`` are the same nondeterminism source.
:class:`ImportMap` records every import binding of a module so call
sites can be resolved back to their dotted origin, without executing
anything.
"""

from __future__ import annotations

import ast


class ImportMap:
    """Local name -> dotted origin, from a module's import statements.

    Only module-level and function-level ``import`` / ``from ... import``
    bindings are tracked; names rebound by assignments afterwards are
    deliberately still resolved (a rebinding that shadows ``random`` to
    hide a lint finding deserves to be flagged, not excused).
    """

    def __init__(self, tree: ast.AST) -> None:
        self._names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a` to package `a`;
                    # `import a.b as c` binds `c` to `a.b`.
                    origin = alias.name if alias.asname else alias.name.split(".")[0]
                    self._names[bound] = origin
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative imports never reach stdlib sources
                    continue
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self._names[bound] = f"{module}.{alias.name}" if module else alias.name

    def origin_of(self, name: str) -> str | None:
        return self._names.get(name)

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a Name/Attribute chain, or ``None``.

        ``time.perf_counter`` resolves to ``time.perf_counter``;
        ``perf_counter`` (imported from ``time``) likewise; a chain
        rooted in a local variable resolves to ``None``.
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self._names.get(node.id)
        if origin is None:
            # Unimported bare name: resolvable only if it is a builtin
            # the caller cares about (e.g. `id`); report it verbatim.
            origin = node.id
        parts.append(origin)
        return ".".join(reversed(parts))


def call_name(imports: ImportMap, call: ast.Call) -> str | None:
    """Resolved dotted name of a call's callee."""
    return imports.resolve(call.func)


def is_unordered_expr(node: ast.AST, imports: ImportMap) -> str | None:
    """Describe ``node`` if its iteration order is not deterministic
    (or propagates dict order into an order-sensitive artifact).

    Returns a short human description of the unordered source, or
    ``None`` when the expression is order-safe.  Covered sources:

    * set displays ``{a, b}`` and set comprehensions;
    * ``set(...)`` / ``frozenset(...)`` calls;
    * ``.keys()`` / ``.values()`` / ``.items()`` dict views.

    Dict views *are* insertion-ordered in Python, but insertion order
    is an implementation detail of the construction site; feeding one
    into a canonical artifact couples the encoding to incidental
    construction order, which is exactly what DET002 polices.
    """
    if isinstance(node, ast.Set):
        return "a set display"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        resolved = call_name(imports, node)
        if resolved in ("set", "frozenset", "builtins.set", "builtins.frozenset"):
            if node.args or node.keywords:
                return f"{resolved.rsplit('.', 1)[-1]}(...)"
            return None  # empty set() constructs, it does not iterate
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values", "items")
            and not node.args
            and not node.keywords
        ):
            return f".{node.func.attr}() dict view"
    return None


def iterable_of(node: ast.AST) -> ast.AST:
    """Peel one comprehension layer: the iterable actually looped over.

    ``tuple(f(x) for x in xs)`` is order-sensitive in ``xs``, not in
    the generator expression object itself.
    """
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        return node.generators[0].iter
    return node
