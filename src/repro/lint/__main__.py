"""``python -m repro.lint`` — the invariant-analyzer CLI.

Exit codes are stable and meant for gating:

* ``0`` — no new error-severity findings (clean, warn-only, or all
  findings baselined);
* ``1`` — at least one new error-severity finding;
* ``2`` — usage or configuration error (unknown rule, missing path,
  malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.analyzer import run_lint
from repro.lint.baseline import Baseline, BaselineError
from repro.lint.registry import all_rules

DEFAULT_PATHS = ("src", "benchmarks", "examples")

USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analyzer for the repo's determinism and "
        "anonymity invariants (see docs/LINT.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="analysis root; findings and rule scoping use paths relative "
        "to it (default: current directory)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE[,RULE]",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of acknowledged findings; only new findings fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report findings but always exit 0 (adoption/sweep mode)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        metavar="FILE",
        help="emit the JSON report (to FILE, or stdout when no FILE given)",
    )
    parser.add_argument(
        "--call-graph",
        metavar="FILE",
        help="write the whole-program call graph (JSON: nodes, edges, "
        "unresolved/ambiguous call sites) of the analyzed src/ tree",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    select: list[str] = []
    for chunk in args.select:
        select.extend(s.strip() for s in chunk.split(",") if s.strip())

    if args.list_rules:
        try:
            rules = all_rules(select)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return USAGE_ERROR
        for rule in rules:
            print(f"{rule.rule_id}  [{rule.severity}]  {rule.description}")
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"error: root {args.root!r} is not a directory", file=sys.stderr)
        return USAGE_ERROR

    raw_paths = args.paths or [
        str(root / p) for p in DEFAULT_PATHS if (root / p).is_dir()
    ]
    paths = [Path(p) for p in raw_paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return USAGE_ERROR

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return USAGE_ERROR

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return USAGE_ERROR

    try:
        report = run_lint(
            paths,
            root,
            select=select,
            baseline=None if args.write_baseline else baseline,
            warn_only=args.warn_only,
            want_call_graph=bool(args.call_graph),
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return USAGE_ERROR

    if args.call_graph and report.call_graph is not None:
        Path(args.call_graph).write_text(
            json.dumps(report.call_graph, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    if args.write_baseline:
        assert baseline is not None
        new_baseline = Baseline.from_findings(
            Path(args.baseline), report.findings, previous=baseline
        )
        new_baseline.write()
        print(
            f"wrote {len(new_baseline.entries)} baseline entrie(s) to "
            f"{args.baseline}; add a justifying 'note' to each"
        )
        return 0

    if args.json:
        payload = json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload, encoding="utf-8")
    if args.json != "-":
        print(report.render())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
