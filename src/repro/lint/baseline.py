"""Baseline files: acknowledged findings that do not fail the gate.

A baseline is the escape hatch for adopting the analyzer on a tree
with pre-existing findings: record them once (``--write-baseline``),
then every run fails only on *new* findings.  Entries are matched by
fingerprint — rule id, path and message, deliberately excluding line
numbers so unrelated edits do not invalidate the baseline — and every
entry carries a free-text ``note`` explaining why the finding is
acceptable (the review policy in docs/LINT.md requires one).

Entries whose finding has disappeared are *expired*: they are reported
so the baseline shrinks monotonically toward empty, which is the state
this repository maintains (see LINT_BASELINE.json).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.lint.findings import Finding

BASELINE_SCHEMA_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed."""


@dataclass
class Baseline:
    """In-memory form of one baseline file."""

    path: Path
    entries: list[dict[str, Any]]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls(path=path, entries=[])
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(f"{path}: expected an object with 'entries'")
        entries = payload["entries"]
        for entry in entries:
            missing = {"rule", "path", "message", "fingerprint"} - set(entry)
            if missing:
                raise BaselineError(
                    f"{path}: baseline entry missing keys {sorted(missing)}"
                )
        return cls(path=path, entries=list(entries))

    def apply(
        self,
        findings: list[Finding],
        active_rules: "set[str] | None" = None,
    ) -> tuple[list[Finding], list[dict[str, Any]]]:
        """Mark baselined findings; report entries that no longer match.

        An entry is *expired* (stale) only when its rule actually ran
        this pass and produced no matching finding.  Under ``--select``
        (or an explicit ``rules=`` subset) the unselected rules never
        got a chance to re-produce their findings, so their entries are
        neither matched nor expired — they are simply out of scope.
        ``active_rules=None`` means the full registry ran.
        """
        known = {entry["fingerprint"]: entry for entry in self.entries}
        seen = set()
        out: list[Finding] = []
        for finding in findings:
            if finding.fingerprint in known:
                seen.add(finding.fingerprint)
                out.append(finding.with_baselined())
            else:
                out.append(finding)
        expired = [
            entry
            for fp, entry in known.items()
            if fp not in seen
            and (active_rules is None or entry["rule"] in active_rules)
        ]
        expired.sort(key=lambda e: (e["path"], e["rule"], e["message"]))
        return out, expired

    @classmethod
    def from_findings(
        cls, path: Path, findings: list[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        """Baseline the given findings, keeping notes of retained entries."""
        notes = {}
        if previous is not None:
            notes = {
                entry["fingerprint"]: entry.get("note", "")
                for entry in previous.entries
            }
        entries = []
        for finding in findings:
            entries.append(
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "message": finding.message,
                    "fingerprint": finding.fingerprint,
                    "note": notes.get(
                        finding.fingerprint, "TODO: justify or fix this finding"
                    ),
                }
            )
        entries.sort(key=lambda e: (e["path"], e["rule"], e["message"]))
        return cls(path=path, entries=entries)

    def write(self) -> None:
        payload = {
            "schema_version": BASELINE_SCHEMA_VERSION,
            "tool": "repro-lint",
            "entries": self.entries,
        }
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
