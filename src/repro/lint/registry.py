"""Rule base class and registry.

A rule is a class with a ``rule_id``, a ``severity``, a one-line
``description`` (surfaced by ``--list-rules`` and in the JSON report)
and a ``check(module)`` generator yielding :class:`Finding`-shaped
tuples.  Rules register themselves with the :func:`register` decorator;
:func:`all_rules` instantiates the registry in rule-id order, which is
the order findings are produced in (the analyzer then sorts findings
by location, so registration order never leaks into output).

Path scoping lives on the rule: ``include`` restricts a rule to files
under the listed prefixes (empty = everywhere), ``exclude`` carves out
sanctioned files (the tape layer for DET001, the runtime package for
ENG001, ...).  Prefixes are matched against the analysis-root-relative
POSIX path, so the same rule set behaves identically in CI, locally,
and against the synthetic trees the lint tests build under ``tmp_path``.
"""

from __future__ import annotations

import fnmatch
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.analyzer import ModuleContext


class Rule:
    """Base class for one invariant check."""

    rule_id: str = ""
    severity: str = Severity.ERROR
    description: str = ""
    #: Root-relative path prefixes (or fnmatch globs) the rule applies
    #: to; empty means every analyzed file.
    include: tuple = ()
    #: Root-relative path prefixes (or fnmatch globs) exempt from the
    #: rule even when matched by ``include``.
    exclude: tuple = ()

    def applies_to(self, relpath: str) -> bool:
        if self.include and not any(_match(relpath, pat) for pat in self.include):
            return False
        return not any(_match(relpath, pat) for pat in self.exclude)

    def check(self, module: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: "ModuleContext", node, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node of ``module``."""
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProgramRule(Rule):
    """Base class for whole-program (interprocedural) checks.

    A program rule sees the entire analyzed tree at once — a
    :class:`repro.lint.flow.FlowProgram` with the call graph and the
    per-function taint summaries — instead of one module at a time.
    Its findings still anchor at concrete ``path:line`` locations, so
    suppressions, fingerprints and baselines apply unchanged.
    """

    is_program_rule = True

    def check(self, module: "ModuleContext") -> Iterator[Finding]:
        raise TypeError(
            f"{self.rule_id} is a whole-program rule; use check_program()"
        )

    def check_program(self, program) -> Iterator[Finding]:
        raise NotImplementedError


def _match(relpath: str, pattern: str) -> bool:
    """Prefix match for directory-style patterns, fnmatch otherwise."""
    if any(ch in pattern for ch in "*?["):
        return fnmatch.fnmatch(relpath, pattern)
    return relpath == pattern or relpath.startswith(pattern.rstrip("/") + "/")


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    if cls.severity not in Severity.ALL:
        raise ValueError(
            f"rule {cls.rule_id}: unknown severity {cls.severity!r}"
        )
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules(select: Iterable[str] = ()) -> list[Rule]:
    """Instantiate the registered rules, optionally filtered by id.

    A ``select`` token is either an exact rule id (``FLOW001``) or a
    family prefix (``FLOW`` selects every ``FLOW###`` rule), so CI can
    gate on a whole rule family without enumerating its members.
    """
    import repro.lint.rules  # noqa: F401  -- populates the registry

    wanted = {rule_id.upper() for rule_id in select}
    unknown = {
        token
        for token in wanted
        if not any(rule_id.startswith(token) for rule_id in _REGISTRY)
    }
    if unknown:
        raise KeyError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(_REGISTRY))}"
        )
    return [
        rule_cls()
        for rule_id, rule_cls in sorted(_REGISTRY.items())
        if not wanted or any(rule_id.startswith(token) for token in wanted)
    ]


def known_rule_ids() -> list[str]:
    import repro.lint.rules  # noqa: F401

    return sorted(_REGISTRY)


__all__ = ["ProgramRule", "Rule", "all_rules", "known_rule_ids", "register"]
