"""The port-numbering model, and its emulation over broadcast + colors.

The paper's model grants each node a local numbering of its incident
edges, but remarks (end of Section 1.3) that *"port numbers are not
necessary under the assumption of randomized algorithms … by including
the sender's color in every message missing port numbers can be
emulated."*  This module makes both halves executable:

* :class:`PortAwareAlgorithm` + :class:`PortScheduler` — a native
  port-numbering runtime: a node sends a (possibly different) message on
  each port and receives messages indexed by port.  The scheduler is a
  shim over the unified :class:`~repro.runtime.engine.ExecutionEngine`
  with :class:`~repro.runtime.engine.PortDelivery`; prefer
  :func:`repro.runtime.engine.execute`, which picks that discipline
  automatically for port-aware algorithms.
* :func:`emulate_ports` — an adapter compiling a port-aware algorithm
  into a broadcast :class:`~repro.runtime.algorithm.AnonymousAlgorithm`
  for 2-hop colored instances: virtual port ``i`` of a node is its
  ``i``-th neighbor in color order (colors in a closed neighborhood are
  distinct, so this is well-defined); messages are broadcast as
  ``(sender color, {target color: payload})`` and receivers select their
  own entry and attribute it to the sender-color port.

The equivalence test in the suite runs the same port-aware algorithm
natively (with color-order port numbering) and emulated, and checks the
outputs coincide — reproducing the paper's remark as a theorem about
this codebase.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Mapping, Sequence
from typing import Any

from repro.exceptions import RuntimeModelError
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import (
    ExecutionEngine,
    ExecutionPolicy,
    ExecutionResult,
    PortDelivery,
    _trace_level,
)
from repro.runtime.tape import BitSource


class PortAwareAlgorithm(ABC):
    """An anonymous algorithm in the port-numbering model.

    Same contract as :class:`AnonymousAlgorithm` except that messaging is
    per-port: ``messages(state, degree)`` returns one payload per port
    (length = degree) and ``transition`` receives the tuple of payloads
    indexed by *this node's* ports.
    """

    bits_per_round: int = 0
    name: str = "port-aware-algorithm"

    @abstractmethod
    def init_state(self, input_label: Any, degree: int) -> Any: ...

    @abstractmethod
    def messages(self, state: Any, degree: int) -> Sequence[Any]:
        """The payload to send on each port, in port order."""

    @abstractmethod
    def transition(self, state: Any, received: tuple[Any, ...], bits: str) -> Any:
        """``received[i]`` is the payload that arrived on port ``i``."""

    @abstractmethod
    def output(self, state: Any) -> Any | None: ...


class PortScheduler(ExecutionEngine):
    """Runs a :class:`PortAwareAlgorithm` natively on a graph's ports.

    A shim over :class:`~repro.runtime.engine.ExecutionEngine` with
    :class:`~repro.runtime.engine.PortDelivery`.  Sharing the kernel
    gives the port model the same guarantees as the broadcast one: runs
    stop *before* a round some node's tape cannot fund (instead of
    raising mid-round with mutated state), output irrevocability raises
    :class:`~repro.exceptions.OutputAlreadySetError` with round context
    (including an output reverting to ``None``), and tracing can be
    disabled via ``record_trace``.
    """

    def __init__(
        self,
        algorithm: PortAwareAlgorithm,
        graph: LabeledGraph,
        tapes: Mapping[Node, BitSource],
        record_trace: bool = True,
    ) -> None:
        super().__init__(
            algorithm,
            graph,
            tapes,
            delivery=PortDelivery(),
            policy=ExecutionPolicy(trace=_trace_level(record_trace)),
        )

    def run(self, max_rounds: int) -> ExecutionResult:
        """Run until all nodes decide, tapes run dry, or ``max_rounds``."""
        return super().run(max_rounds=max_rounds)


# ----------------------------------------------------------------------
# Emulation over broadcast + colors
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _EmulationState:
    phase: str  # "hello" | "steady"
    color: Any
    neighbor_colors: tuple[Any, ...]  # sorted; index = virtual port
    inner: Any


def _color_key(color: Any) -> tuple[str, str]:
    return (type(color).__name__, repr(color))


class PortEmulation(AnonymousAlgorithm):
    """A broadcast algorithm emulating a port-aware one via colors.

    Requires the composed node label to be ``(input_label, color)`` with
    the color layer a 2-hop coloring.  One extra "hello" round exchanges
    colors; afterwards every emulated round costs one broadcast round.
    Virtual port order is ascending neighbor-color order.
    """

    def __init__(self, inner: PortAwareAlgorithm) -> None:
        self.inner = inner
        self.bits_per_round = inner.bits_per_round
        self.name = f"port-emulation({inner.name})"

    def init_state(self, input_label: Any, degree: int) -> _EmulationState:
        real_input, color = input_label
        return _EmulationState(
            phase="hello",
            color=color,
            neighbor_colors=(),
            inner=self.inner.init_state(real_input, degree),
        )

    def message(self, state: _EmulationState):
        if state.phase == "hello":
            return ("hello", state.color)
        payloads = self.inner.messages(state.inner, len(state.neighbor_colors))
        if len(payloads) != len(state.neighbor_colors):
            raise RuntimeModelError(
                f"{self.inner.name} produced {len(payloads)} messages for "
                f"{len(state.neighbor_colors)} virtual ports"
            )
        return (
            "data",
            state.color,
            tuple(
                (target_color, payload)
                for target_color, payload in zip(state.neighbor_colors, payloads)
            ),
        )

    def transition(self, state: _EmulationState, received, bits: str) -> _EmulationState:
        if state.phase == "hello":
            colors = tuple(
                sorted((message[1] for message in received), key=_color_key)
            )
            if len(set(colors)) != len(colors):
                raise RuntimeModelError(
                    "neighbor colors collide; the color layer is not a "
                    "2-hop coloring"
                )
            return _EmulationState(
                phase="steady",
                color=state.color,
                neighbor_colors=colors,
                inner=state.inner,
            )
        by_port: dict[int, Any] = {}
        port_of = {c: i for i, c in enumerate(state.neighbor_colors)}
        for message in received:
            _tag, sender_color, addressed = message
            port = port_of[sender_color]
            for target_color, payload in addressed:
                if target_color == state.color:
                    by_port[port] = payload
                    break
        inbox = tuple(by_port[i] for i in range(len(state.neighbor_colors)))
        new_inner = self.inner.transition(state.inner, inbox, bits)
        return _EmulationState(
            phase="steady",
            color=state.color,
            neighbor_colors=state.neighbor_colors,
            inner=new_inner,
        )

    def output(self, state: _EmulationState) -> Any | None:
        if state.phase == "hello":
            return None
        return self.inner.output(state.inner)


def emulate_ports(inner: PortAwareAlgorithm) -> PortEmulation:
    """Compile a port-aware algorithm into its broadcast emulation.

    The returned :class:`PortEmulation` runs on 2-hop colored instances
    (labels ``(input_label, color)``) and pays exactly one extra "hello"
    round — including one extra draw of ``bits_per_round`` bits per node,
    discarded during the hello exchange.
    """
    return PortEmulation(inner)
