"""Execution traces: a per-round record of what happened.

Traces serve three purposes: debugging, the lifting-lemma experiments
(comparing a product execution with its factor execution round by
round), and round/bit accounting in the analysis harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphs.labeled_graph import Node


@dataclass(frozen=True)
class RoundRecord:
    """One synchronous round.

    Attributes
    ----------
    round_number:
        1-based round index.
    sent:
        Message broadcast by each node this round.
    bits:
        Random bits drawn by each node this round.
    new_outputs:
        Outputs that became set *during* this round.
    """

    round_number: int
    sent: dict[Node, Any]
    bits: dict[Node, str]
    new_outputs: dict[Node, Any]


@dataclass
class ExecutionTrace:
    """The full record of an execution."""

    algorithm_name: str
    rounds: list[RoundRecord] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def bits_of(self, node: Node) -> str:
        """All bits node ``node`` drew, concatenated in round order."""
        return "".join(record.bits.get(node, "") for record in self.rounds)

    def assignment(self) -> dict[Node, str]:
        """The bit assignment ``b`` that induces (replays) this execution."""
        nodes: set = set()
        for record in self.rounds:
            nodes.update(record.bits)
        return {node: self.bits_of(node) for node in sorted(nodes, key=repr)}

    def output_round(self, node: Node) -> int | None:
        """The round in which ``node`` set its output, or ``None``."""
        for record in self.rounds:
            if node in record.new_outputs:
                return record.round_number
        return None

    def messages_of(self, node: Node) -> tuple[Any, ...]:
        """The messages ``node`` broadcast, in round order."""
        return tuple(record.sent[node] for record in self.rounds if node in record.sent)
