"""Bit tapes — the explicit randomness model.

A :class:`BitSource` hands a node its random bits round by round.  Three
implementations cover the reproduction's needs:

* :class:`RandomTape` — a seeded pseudo-random source for genuine
  randomized executions.
* :class:`FixedTape` — replays a predetermined bitstring; running every
  node from a fixed tape is exactly the paper's "simulation induced by
  the assignment b" (Section 2.2).
* :class:`RecordingTape` — wraps another source and records what was
  drawn, so a random execution can be replayed or lifted later.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.exceptions import SimulationError


class BitSource(ABC):
    """Supplier of random bits for one node."""

    @abstractmethod
    def draw(self, count: int) -> str:
        """The next ``count`` bits as a string over ``{'0','1'}``."""

    @abstractmethod
    def remaining(self, count: int) -> bool:
        """Whether ``count`` more bits are available."""


class RandomTape(BitSource):
    """Unbounded seeded random bits."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def draw(self, count: int) -> str:
        if count < 0:
            raise SimulationError(f"cannot draw {count} bits")
        return "".join(str(self._rng.getrandbits(1)) for _ in range(count))

    def remaining(self, count: int) -> bool:
        return True


class FixedTape(BitSource):
    """Replays a fixed bitstring; exhausting it ends the simulation."""

    def __init__(self, bits: str) -> None:
        if any(c not in "01" for c in bits):
            raise SimulationError(f"bitstring may contain only 0/1, got {bits!r}")
        self._bits = bits
        self._position = 0

    def draw(self, count: int) -> str:
        if not self.remaining(count):
            raise SimulationError(
                f"tape exhausted: needed {count} bits at position {self._position} "
                f"of {len(self._bits)}"
            )
        chunk = self._bits[self._position : self._position + count]
        self._position += count
        return chunk

    def remaining(self, count: int) -> bool:
        return self._position + count <= len(self._bits)

    @property
    def consumed(self) -> int:
        return self._position


class RecordingTape(BitSource):
    """Wraps a source and records every bit drawn."""

    def __init__(self, inner: BitSource) -> None:
        self._inner = inner
        self._record: list[str] = []

    def draw(self, count: int) -> str:
        chunk = self._inner.draw(count)
        self._record.append(chunk)
        return chunk

    def remaining(self, count: int) -> bool:
        return self._inner.remaining(count)

    @property
    def recorded(self) -> str:
        return "".join(self._record)
