"""The synchronous anonymous message-passing runtime (paper Section 1.1).

Algorithms are *port-oblivious broadcast state machines*: in every round
a node broadcasts one message to all neighbors and receives the multiset
of its neighbors' messages.  The paper notes (end of Section 1.3) that
port numbers are unnecessary in its setting — senders can include their
color in messages — and port-obliviousness is exactly the property that
makes executions lift along label-respecting local isomorphisms (the
lifting lemma), which the derandomization machinery depends on.

Randomness is modeled explicitly: a node receives ``bits_per_round``
random bits each round, either from a seeded source (a real randomized
execution) or from a fixed *bit assignment* ``b : V -> {0,1}^t`` — the
"simulation induced by b" of Section 2.2.
"""

from repro.runtime.algorithm import (
    AnonymousAlgorithm,
    FunctionAlgorithm,
    RandomizedShell,
    randomized_shell,
)
from repro.runtime.composition import TwoStageComposition
from repro.runtime.engine import (
    BroadcastDelivery,
    DeliveryDiscipline,
    EngineMetricsTotals,
    ExecutionEngine,
    ExecutionMetrics,
    ExecutionPolicy,
    ExecutionResult,
    PortDelivery,
    RoundHook,
    collect_engine_metrics,
    execute,
)
from repro.runtime.port_model import (
    PortAwareAlgorithm,
    PortEmulation,
    PortScheduler,
    emulate_ports,
)
from repro.runtime.tape import BitSource, FixedTape, RandomTape, RecordingTape
from repro.runtime.trace import ExecutionTrace, RoundRecord
from repro.runtime.scheduler import SynchronousScheduler
from repro.runtime.simulation import (
    SimulationResult,
    run_deterministic,
    run_randomized,
    simulate_with_assignment,
    simulation_is_successful,
)

__all__ = [
    "AnonymousAlgorithm",
    "FunctionAlgorithm",
    "RandomizedShell",
    "randomized_shell",
    "BroadcastDelivery",
    "DeliveryDiscipline",
    "EngineMetricsTotals",
    "ExecutionEngine",
    "ExecutionMetrics",
    "ExecutionPolicy",
    "PortDelivery",
    "RoundHook",
    "collect_engine_metrics",
    "execute",
    "PortAwareAlgorithm",
    "PortEmulation",
    "PortScheduler",
    "emulate_ports",
    "TwoStageComposition",
    "BitSource",
    "FixedTape",
    "RandomTape",
    "RecordingTape",
    "ExecutionTrace",
    "RoundRecord",
    "ExecutionResult",
    "SynchronousScheduler",
    "SimulationResult",
    "run_deterministic",
    "run_randomized",
    "simulate_with_assignment",
    "simulation_is_successful",
]
