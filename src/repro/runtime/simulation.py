"""Simulations induced by bit assignments, and seeded random executions.

``simulate_with_assignment(A, G, b)`` is the paper's *t-round simulation
of A on G induced by b* (Section 2.2): every node's randomness is
replaced by its fixed bitstring ``b(v)``; the simulation lasts
``l = min_v floor(|b(v)| / bits_per_round)`` rounds and is *successful*
when every node produces an output within those rounds.

``run_randomized(A, G, seed)`` runs a genuine randomized execution from
a seeded source while recording the bits drawn, so the execution can be
replayed (``result.trace.assignment()``) or lifted to a product graph.

All three runners are thin wrappers over
:func:`repro.runtime.engine.execute` — the one high-level entry point of
the unified kernel — kept for their narrower signatures and the
:class:`SimulationResult` vocabulary of the assignment-based machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any

from repro.exceptions import SimulationError
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import ExecutionResult, execute
from repro.runtime.trace import ExecutionTrace

Assignment = Mapping[Node, str]


@dataclass
class SimulationResult:
    """Outcome of a simulation induced by a bit assignment.

    ``successful`` is the paper's success notion: every node produced an
    output within the rounds funded by the assignment.
    """

    outputs: dict[Node, Any]
    rounds: int
    successful: bool
    trace: ExecutionTrace | None

    def output_of(self, node: Node) -> Any:
        if node not in self.outputs:
            raise SimulationError(f"node {node!r} produced no output")
        return self.outputs[node]


def simulate_with_assignment(
    algorithm: AnonymousAlgorithm,
    graph: LabeledGraph,
    assignment: Assignment,
    record_trace: bool = False,
) -> SimulationResult:
    """The simulation of ``algorithm`` on ``graph`` induced by ``assignment``."""
    result = execute(
        algorithm, graph, assignment=assignment, record_trace=record_trace
    )
    return SimulationResult(
        outputs=result.outputs,
        rounds=result.rounds,
        successful=result.all_decided,
        trace=result.trace,
    )


def simulation_is_successful(
    algorithm: AnonymousAlgorithm, graph: LabeledGraph, assignment: Assignment
) -> bool:
    """Whether the simulation induced by ``assignment`` is successful."""
    return execute(algorithm, graph, assignment=assignment).all_decided


def run_randomized(
    algorithm: AnonymousAlgorithm,
    graph: LabeledGraph,
    seed: int,
    max_rounds: int = 10_000,
    record_trace: bool = True,
) -> ExecutionResult:
    """A seeded randomized execution with recorded bits.

    Deterministic algorithms run the same way with zero bits per round.
    Raises :class:`SimulationError` if the round limit is exceeded —
    Las-Vegas algorithms terminate with probability 1, so hitting the
    limit on reasonable inputs indicates a bug or an adversarial case.
    """
    return execute(
        algorithm,
        graph,
        seed=seed,
        max_rounds=max_rounds,
        record_trace=record_trace,
        require_decided=True,
    )


def run_deterministic(
    algorithm: AnonymousAlgorithm,
    graph: LabeledGraph,
    max_rounds: int = 10_000,
    record_trace: bool = True,
) -> ExecutionResult:
    """Run a deterministic algorithm (``bits_per_round == 0``)."""
    if not algorithm.is_deterministic:
        raise SimulationError(
            f"{algorithm.name} is randomized; use run_randomized or "
            "simulate_with_assignment"
        )
    return execute(
        algorithm,
        graph,
        max_rounds=max_rounds,
        record_trace=record_trace,
        require_decided=True,
    )
