"""Simulations induced by bit assignments, and seeded random executions.

``simulate_with_assignment(A, G, b)`` is the paper's *t-round simulation
of A on G induced by b* (Section 2.2): every node's randomness is
replaced by its fixed bitstring ``b(v)``; the simulation lasts
``l = min_v floor(|b(v)| / bits_per_round)`` rounds and is *successful*
when every node produces an output within those rounds.

``run_randomized(A, G, seed)`` runs a genuine randomized execution from
a seeded source while recording the bits drawn, so the execution can be
replayed (``result.trace.assignment()``) or lifted to a product graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.exceptions import SimulationError
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.scheduler import ExecutionResult, SynchronousScheduler
from repro.runtime.tape import FixedTape, RandomTape, RecordingTape
from repro.runtime.trace import ExecutionTrace

Assignment = Mapping[Node, str]


@dataclass
class SimulationResult:
    """Outcome of a simulation induced by a bit assignment.

    ``successful`` is the paper's success notion: every node produced an
    output within the rounds funded by the assignment.
    """

    outputs: Dict[Node, Any]
    rounds: int
    successful: bool
    trace: Optional[ExecutionTrace]

    def output_of(self, node: Node) -> Any:
        if node not in self.outputs:
            raise SimulationError(f"node {node!r} produced no output")
        return self.outputs[node]


def simulate_with_assignment(
    algorithm: AnonymousAlgorithm,
    graph: LabeledGraph,
    assignment: Assignment,
    record_trace: bool = False,
) -> SimulationResult:
    """The simulation of ``algorithm`` on ``graph`` induced by ``assignment``."""
    missing = [v for v in graph.nodes if v not in assignment]
    if missing:
        raise SimulationError(f"assignment does not cover nodes {missing!r}")
    if algorithm.bits_per_round == 0:
        raise SimulationError(
            "simulations induced by an assignment require a randomized "
            "algorithm (bits_per_round >= 1); deterministic algorithms "
            "should be run via SynchronousScheduler directly"
        )
    tapes = {v: FixedTape(assignment[v]) for v in graph.nodes}
    rounds_funded = min(
        len(assignment[v]) // algorithm.bits_per_round for v in graph.nodes
    )
    scheduler = SynchronousScheduler(algorithm, graph, tapes, record_trace=record_trace)
    result = scheduler.run(max_rounds=rounds_funded)
    return SimulationResult(
        outputs=result.outputs,
        rounds=result.rounds,
        successful=result.all_decided,
        trace=result.trace,
    )


def simulation_is_successful(
    algorithm: AnonymousAlgorithm, graph: LabeledGraph, assignment: Assignment
) -> bool:
    """Whether the simulation induced by ``assignment`` is successful."""
    return simulate_with_assignment(algorithm, graph, assignment).successful


def run_randomized(
    algorithm: AnonymousAlgorithm,
    graph: LabeledGraph,
    seed: int,
    max_rounds: int = 10_000,
    record_trace: bool = True,
) -> ExecutionResult:
    """A seeded randomized execution with recorded bits.

    Deterministic algorithms run the same way with zero bits per round.
    Raises :class:`SimulationError` if the round limit is exceeded —
    Las-Vegas algorithms terminate with probability 1, so hitting the
    limit on reasonable inputs indicates a bug or an adversarial case.
    """
    tapes = {
        v: RecordingTape(RandomTape(seed * 1_000_003 + index))
        for index, v in enumerate(graph.nodes)
    }
    scheduler = SynchronousScheduler(algorithm, graph, tapes, record_trace=record_trace)
    result = scheduler.run(max_rounds=max_rounds)
    if not result.all_decided:
        raise SimulationError(
            f"{algorithm.name} did not terminate within {max_rounds} rounds "
            f"on {graph!r} with seed {seed}"
        )
    return result


def run_deterministic(
    algorithm: AnonymousAlgorithm,
    graph: LabeledGraph,
    max_rounds: int = 10_000,
    record_trace: bool = True,
) -> ExecutionResult:
    """Run a deterministic algorithm (``bits_per_round == 0``)."""
    if not algorithm.is_deterministic:
        raise SimulationError(
            f"{algorithm.name} is randomized; use run_randomized or "
            "simulate_with_assignment"
        )
    tapes = {v: FixedTape("") for v in graph.nodes}
    scheduler = SynchronousScheduler(algorithm, graph, tapes, record_trace=record_trace)
    result = scheduler.run(max_rounds=max_rounds)
    if not result.all_decided:
        raise SimulationError(
            f"{algorithm.name} did not terminate within {max_rounds} rounds on {graph!r}"
        )
    return result
