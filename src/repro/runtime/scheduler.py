"""The synchronous broadcast scheduler — a thin shim over the engine.

Each round: every node broadcasts ``message(state)``; messages are
delivered as canonically sorted tuples (the anonymous multiset); every
node draws ``bits_per_round`` bits and transitions.  The scheduler
enforces *irrevocable outputs* — once ``output(state)`` is non-``None``
it may never change — and stops when every node has an output, when a
round limit is hit, or (for fixed tapes) just before a round some node's
tape cannot fund, matching the paper's ``l = min length`` convention for
simulations induced by an assignment.

All of that behavior lives in :class:`~repro.runtime.engine.ExecutionEngine`;
this class only fixes the delivery discipline to
:class:`~repro.runtime.engine.BroadcastDelivery` and keeps the historical
constructor signature.  New code should call
:func:`repro.runtime.engine.execute` instead of constructing schedulers.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import (
    BroadcastDelivery,
    ExecutionEngine,
    ExecutionPolicy,
    ExecutionResult,
    _message_sort_key,  # noqa: F401  (re-exported for backward compatibility)
    _trace_level,
)
from repro.runtime.tape import BitSource

__all__ = ["ExecutionResult", "SynchronousScheduler"]


class SynchronousScheduler(ExecutionEngine):
    """Runs one broadcast algorithm on one labeled graph with explicit
    bit sources.  A shim: everything happens in the shared kernel."""

    def __init__(
        self,
        algorithm: AnonymousAlgorithm,
        graph: LabeledGraph,
        tapes: Mapping[Node, BitSource],
        record_trace: bool = True,
    ) -> None:
        super().__init__(
            algorithm,
            graph,
            tapes,
            delivery=BroadcastDelivery(),
            policy=ExecutionPolicy(trace=_trace_level(record_trace)),
        )

    def run(self, max_rounds: int) -> ExecutionResult:
        """Run until all nodes decide, tapes run dry, or ``max_rounds``."""
        return super().run(max_rounds=max_rounds)
