"""The synchronous round scheduler.

Each round: every node broadcasts ``message(state)``; messages are
delivered as canonically sorted tuples (the anonymous multiset); every
node draws ``bits_per_round`` bits and transitions.  The scheduler
enforces *irrevocable outputs* — once ``output(state)`` is non-``None``
it may never change — and stops when every node has an output, when a
round limit is hit, or (for fixed tapes) just before a round some node's
tape cannot fund, matching the paper's ``l = min length`` convention for
simulations induced by an assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.exceptions import OutputAlreadySetError, RuntimeModelError
from repro.graphs.labeled_graph import LabeledGraph, Node, _freeze
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.tape import BitSource
from repro.runtime.trace import ExecutionTrace, RoundRecord


def _message_sort_key(message: Any) -> str:
    return repr(_freeze(message))


@dataclass
class ExecutionResult:
    """Outcome of running an algorithm on a graph.

    Attributes
    ----------
    outputs:
        Output per node; nodes that never decided are absent.
    rounds:
        Rounds actually executed.
    all_decided:
        Whether every node produced an output (a *successful* run).
    trace:
        Full per-round record (``None`` when tracing was disabled).
    """

    outputs: Dict[Node, Any]
    rounds: int
    all_decided: bool
    trace: Optional[ExecutionTrace]

    def output_labeling(self) -> Dict[Node, Any]:
        """The output labeling ``o``; raises if some node is undecided."""
        if not self.all_decided:
            missing = self.rounds  # for the message only
            raise RuntimeModelError(
                f"execution did not decide every node within {missing} rounds"
            )
        return dict(self.outputs)


class SynchronousScheduler:
    """Runs one algorithm on one labeled graph with explicit bit sources."""

    def __init__(
        self,
        algorithm: AnonymousAlgorithm,
        graph: LabeledGraph,
        tapes: Mapping[Node, BitSource],
        record_trace: bool = True,
    ) -> None:
        missing = [v for v in graph.nodes if v not in tapes]
        if missing:
            raise RuntimeModelError(f"no bit source for nodes {missing!r}")
        self._algorithm = algorithm
        self._graph = graph
        self._tapes = dict(tapes)
        self._record_trace = record_trace
        self._states: Dict[Node, Any] = {
            v: algorithm.init_state(graph.label(v), graph.degree(v))
            for v in graph.nodes
        }
        self._outputs: Dict[Node, Any] = {}
        self._rounds = 0
        self._trace = ExecutionTrace(algorithm.name) if record_trace else None
        self._note_outputs({})  # outputs may be decided already at round 0

    # ------------------------------------------------------------------

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def all_decided(self) -> bool:
        return len(self._outputs) == self._graph.num_nodes

    def state_of(self, node: Node) -> Any:
        return self._states[node]

    def can_fund_round(self) -> bool:
        """Whether every node's tape can pay for one more round."""
        need = self._algorithm.bits_per_round
        return all(tape.remaining(need) for tape in self._tapes.values())

    def step(self) -> None:
        """Execute one synchronous round."""
        if not self.can_fund_round():
            raise RuntimeModelError(
                "cannot step: some node's bit tape is exhausted"
            )
        graph = self._graph
        algorithm = self._algorithm
        sent = {v: algorithm.message(self._states[v]) for v in graph.nodes}
        bits_drawn: Dict[Node, str] = {}
        new_states: Dict[Node, Any] = {}
        for v in graph.nodes:
            received = tuple(
                sorted((sent[u] for u in graph.neighbors(v)), key=_message_sort_key)
            )
            bits = self._tapes[v].draw(algorithm.bits_per_round)
            bits_drawn[v] = bits
            new_states[v] = algorithm.transition(self._states[v], received, bits)
        self._states = new_states
        self._rounds += 1
        new_outputs = self._note_outputs(bits_drawn)
        if self._trace is not None:
            self._trace.rounds.append(
                RoundRecord(
                    round_number=self._rounds,
                    sent=sent,
                    bits=bits_drawn,
                    new_outputs=new_outputs,
                )
            )

    def _note_outputs(self, bits_drawn: Dict[Node, str]) -> Dict[Node, Any]:
        new_outputs: Dict[Node, Any] = {}
        for v in self._graph.nodes:
            value = self._algorithm.output(self._states[v])
            if v in self._outputs:
                if value is None or value != self._outputs[v]:
                    raise OutputAlreadySetError(
                        f"node {v!r} changed its irrevocable output from "
                        f"{self._outputs[v]!r} to {value!r} in round {self._rounds}"
                    )
            elif value is not None:
                self._outputs[v] = value
                new_outputs[v] = value
        return new_outputs

    def run(self, max_rounds: int) -> ExecutionResult:
        """Run until all nodes decide, tapes run dry, or ``max_rounds``."""
        if max_rounds < 0:
            raise RuntimeModelError(f"max_rounds must be nonnegative, got {max_rounds}")
        while (
            not self.all_decided
            and self._rounds < max_rounds
            and self.can_fund_round()
        ):
            self.step()
        return ExecutionResult(
            outputs=dict(self._outputs),
            rounds=self._rounds,
            all_decided=self.all_decided,
            trace=self._trace,
        )
