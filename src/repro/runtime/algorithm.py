"""The anonymous-algorithm interface.

An :class:`AnonymousAlgorithm` is a pure state machine executed
identically by every node:

* ``init_state(input_label, degree)`` — the state before round 1.  The
  input label is whatever the instance's labeling gives the node (the
  paper assumes it includes the degree; the runtime also passes the
  degree explicitly since it is structural).
* ``message(state)`` — the value broadcast to *all* neighbors this round.
* ``transition(state, received, bits)`` — the next state, given the
  *sorted tuple* of received neighbor messages (a canonical multiset —
  anonymity means a node cannot tell which neighbor sent what beyond the
  message contents) and this round's random bits as a ``"01"`` string of
  length ``bits_per_round``.
* ``output(state)`` — ``None`` while undecided, else the irrevocable
  output.  The scheduler enforces irrevocability.

Purity (no hidden per-node mutable context, all entropy via ``bits``) is
what makes executions replayable from a bit assignment and liftable along
factorizing maps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import Any

Message = Any
State = Any


class AnonymousAlgorithm(ABC):
    """Base class for anonymous message-passing algorithms.

    Attributes
    ----------
    bits_per_round:
        Random bits consumed by every node in every round.  ``0`` makes
        the algorithm deterministic.  The paper's model grants one bit
        per round and notes that any finite number is equivalent
        (Section 1.1); we allow the constant to be chosen per algorithm.
    name:
        Human-readable identifier used in traces and experiment tables.
    """

    bits_per_round: int = 1
    name: str = "anonymous-algorithm"

    @abstractmethod
    def init_state(self, input_label: Any, degree: int) -> State:
        """The node state before the first round."""

    @abstractmethod
    def message(self, state: State) -> Message:
        """The value this node broadcasts to every neighbor this round."""

    @abstractmethod
    def transition(self, state: State, received: tuple[Message, ...], bits: str) -> State:
        """The next state.  ``received`` is the canonical (sorted) tuple of
        neighbor messages; ``bits`` is a string over ``{'0','1'}`` of
        length ``bits_per_round``."""

    @abstractmethod
    def output(self, state: State) -> Any | None:
        """``None`` while undecided; otherwise the node's irrevocable output."""

    @property
    def is_deterministic(self) -> bool:
        return self.bits_per_round == 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, bits_per_round={self.bits_per_round})"


class RandomizedShell(AnonymousAlgorithm):
    """A deterministic algorithm viewed as a (bit-ignoring) randomized one.

    Deterministic algorithms are a special case of randomized ones, but
    the machinery around "simulations induced by b" insists on
    ``bits_per_round >= 1`` (an assignment must fund rounds).  This
    wrapper declares one bit per round and discards it, making any
    deterministic algorithm acceptable to that machinery without
    touching its semantics.
    """

    def __init__(self, inner: AnonymousAlgorithm) -> None:
        if not inner.is_deterministic:
            raise ValueError(
                f"{inner.name} is already randomized; wrap deterministic "
                "algorithms only"
            )
        self.inner = inner
        self.bits_per_round = 1
        self.name = f"randomized-shell({inner.name})"

    def init_state(self, input_label: Any, degree: int) -> State:
        return self.inner.init_state(input_label, degree)

    def message(self, state: State) -> Message:
        return self.inner.message(state)

    def transition(self, state: State, received: tuple[Message, ...], bits: str) -> State:
        return self.inner.transition(state, received, "")

    def output(self, state: State) -> Any | None:
        return self.inner.output(state)


def randomized_shell(algorithm: AnonymousAlgorithm) -> AnonymousAlgorithm:
    """``algorithm`` unchanged if randomized, else its RandomizedShell."""
    if algorithm.is_deterministic:
        return RandomizedShell(algorithm)
    return algorithm


class FunctionAlgorithm(AnonymousAlgorithm):
    """Adapter building an algorithm from four functions.

    Convenient for tests and tiny examples::

        alg = FunctionAlgorithm(
            init=lambda label, deg: 0,
            msg=lambda s: s,
            step=lambda s, received, bits: s + sum(received),
            out=lambda s: s if s > 10 else None,
            bits_per_round=0,
        )
    """

    def __init__(
        self,
        init: Callable[[Any, int], State],
        msg: Callable[[State], Message],
        step: Callable[[State, tuple[Message, ...], str], State],
        out: Callable[[State], Any | None],
        bits_per_round: int = 0,
        name: str = "function-algorithm",
    ) -> None:
        self._init = init
        self._msg = msg
        self._step = step
        self._out = out
        self.bits_per_round = bits_per_round
        self.name = name

    def init_state(self, input_label: Any, degree: int) -> State:
        return self._init(input_label, degree)

    def message(self, state: State) -> Message:
        return self._msg(state)

    def transition(self, state: State, received: tuple[Message, ...], bits: str) -> State:
        return self._step(state, received, bits)

    def output(self, state: State) -> Any | None:
        return self._out(state)
