"""Sequential composition of anonymous algorithms, with a synchronizer.

The paper's headline says every randomized anonymous computation
decouples into a randomized 2-hop coloring stage followed by a
deterministic stage.  This module makes the decoupled pair a *single*
anonymous algorithm again: :class:`TwoStageComposition` runs stage 1 to
(local) completion and then runs stage 2 on top of stage 1's output —
which requires solving a genuinely distributed problem along the way:

**staggered starts.**  Nodes finish stage 1 in different rounds, but
stage 2's semantics assume synchronous rounds.  The composition embeds a
local (α-style) synchronizer:

* every stage-2 message is tagged with its stage-2 round number, and a
  node re-broadcasts, each physical round, the payloads of its current
  stage-2 round and the one before;
* a node executes its stage-2 round ``k`` transition in the first
  physical round in which *every* neighbor's message contains a round-``k``
  payload — each physical round delivers exactly one message per
  neighbor, so the round-``k`` payloads can be collected one-per-neighbor
  without sender identities;
* neighbors' stage-2 progress can never differ by more than one round
  (a node only advances past ``k`` after hearing everyone's round-``k``),
  so the two-round message history always suffices — violations raise.

Stage 1 must keep producing messages after its output is set (all
algorithms in this library do — committed nodes keep relaying), because
slower neighbors may still depend on them; the composition keeps
broadcasting the stage-1 payload alongside stage-2 traffic.

For a *deterministic* stage 2 the composed execution is
message-for-message equivalent to running stage 2 directly on the
stage-1-labeled graph — the equivalence the tests assert.

A composition is an ordinary :class:`AnonymousAlgorithm`, so it runs
unchanged through the unified kernel
(:func:`repro.runtime.engine.execute` with
:class:`~repro.runtime.engine.BroadcastDelivery`); the synchronizer's
reliance on "each physical round delivers exactly one message per
neighbor" is precisely the broadcast discipline's delivery guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable
from typing import Any

from repro.exceptions import RuntimeModelError
from repro.runtime.algorithm import AnonymousAlgorithm


@dataclass(frozen=True)
class _State:
    s1_state: Any
    s1_output: Any | None
    original_input: Any
    degree: int
    started_s2: bool
    s2_state: Any
    s2_round: int  # completed stage-2 rounds; trying round = s2_round + 1
    s2_prev_payload: Any  # my payload of round s2_round (for laggards)


class TwoStageComposition(AnonymousAlgorithm):
    """Run ``stage1``; feed its output into ``stage2``; output stage 2's.

    Parameters
    ----------
    stage1, stage2:
        The two anonymous algorithms.
    make_stage2_input:
        ``(original_input, degree, stage1_output) -> stage2_input`` —
        typically packing the stage-1 color next to the original input,
        e.g. ``lambda inp, deg, color: (inp, color)`` for the
        greedy-by-color consumers.
    """

    def __init__(
        self,
        stage1: AnonymousAlgorithm,
        stage2: AnonymousAlgorithm,
        make_stage2_input: Callable[[Any, int, Any], Any],
        name: str | None = None,
    ) -> None:
        self.stage1 = stage1
        self.stage2 = stage2
        self.make_stage2_input = make_stage2_input
        self.bits_per_round = max(stage1.bits_per_round, stage2.bits_per_round)
        self.name = name or f"compose({stage1.name} ; {stage2.name})"

    # ------------------------------------------------------------------

    def init_state(self, input_label: Any, degree: int) -> _State:
        return _State(
            s1_state=self.stage1.init_state(input_label, degree),
            s1_output=None,
            original_input=input_label,
            degree=degree,
            started_s2=False,
            s2_state=None,
            s2_round=0,
            s2_prev_payload=None,
        )

    def message(self, state: _State):
        s1_payload = self.stage1.message(state.s1_state)
        if not state.started_s2:
            return ("s1-only", s1_payload)
        trying = state.s2_round + 1
        history = [(trying, self.stage2.message(state.s2_state))]
        if state.s2_round >= 1:
            history.append((state.s2_round, state.s2_prev_payload))
        return ("both", s1_payload, tuple(history))

    def transition(self, state: _State, received, bits: str) -> _State:
        s1_bits = bits[: self.stage1.bits_per_round]
        s2_bits = bits[: self.stage2.bits_per_round]

        # --- stage 1 always advances (it keeps relaying after output).
        s1_messages = tuple(
            sorted((message[1] for message in received), key=_payload_key)
        )
        new_s1_state = self.stage1.transition(state.s1_state, s1_messages, s1_bits)
        s1_output = state.s1_output
        if s1_output is None:
            s1_output = self.stage1.output(new_s1_state)
        state = replace(state, s1_state=new_s1_state, s1_output=s1_output)

        # --- enter stage 2 once stage 1 decided locally.
        if not state.started_s2:
            if s1_output is None:
                return state
            s2_input = self.make_stage2_input(
                state.original_input, state.degree, s1_output
            )
            return replace(
                state,
                started_s2=True,
                s2_state=self.stage2.init_state(s2_input, state.degree),
                s2_round=0,
                s2_prev_payload=None,
            )

        # --- stage 2 synchronizer: one payload per neighbor for the
        # round being tried, or hold.
        wanted = state.s2_round + 1
        payloads = []
        for message in received:
            if message[0] != "both":
                continue  # neighbor still in stage 1
            _tag, _s1, history = message
            matches = [payload for (round_number, payload) in history
                       if round_number == wanted]
            if len(matches) > 1:
                raise RuntimeModelError(
                    "synchronizer invariant violated: duplicate round "
                    f"{wanted} payloads in one message"
                )
            if matches:
                payloads.append(matches[0])
            else:
                rounds_seen = [round_number for (round_number, _p) in history]
                if rounds_seen and min(rounds_seen) > wanted:
                    raise RuntimeModelError(
                        "synchronizer invariant violated: neighbor ran "
                        f"{min(rounds_seen) - wanted} rounds ahead"
                    )
        if len(payloads) < state.degree:
            return state  # some neighbor is not there yet: hold
        my_payload = self.stage2.message(state.s2_state)
        ordered = tuple(sorted(payloads, key=_payload_key))
        new_s2_state = self.stage2.transition(state.s2_state, ordered, s2_bits)
        return replace(
            state,
            s2_state=new_s2_state,
            s2_round=wanted,
            s2_prev_payload=my_payload,
        )

    def output(self, state: _State) -> Any | None:
        if not state.started_s2:
            return None
        return self.stage2.output(state.s2_state)


def _payload_key(payload: Any) -> str:
    from repro.graphs.labeled_graph import _freeze

    return repr(_freeze(payload))
