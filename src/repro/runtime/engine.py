"""The unified execution engine: one round kernel, pluggable delivery.

Every execution in this library — broadcast or port-numbered, seeded or
induced by a bit assignment — runs the *same* synchronous round kernel:

    state init -> message emit -> delivery -> bit draw -> transition
               -> irrevocable-output check -> trace/metrics

What varies between the paper's models is only **how messages move**,
captured by a :class:`DeliveryDiscipline`:

* :class:`BroadcastDelivery` — every node broadcasts one message; each
  node receives the canonically sorted tuple of its neighbors' messages
  (the anonymous multiset of Section 1.1).
* :class:`PortDelivery` — every node emits one payload per port and
  receives payloads indexed by its own ports (the port-numbering model
  of Section 1.3).

The kernel is configured by an :class:`ExecutionPolicy` (round limit,
tape-funding rule, trace level) and reports an :class:`ExecutionMetrics`
record on every result.  :class:`SynchronousScheduler
<repro.runtime.scheduler.SynchronousScheduler>` and :class:`PortScheduler
<repro.runtime.port_model.PortScheduler>` are thin shims over this class
— they can never drift apart again because there is nothing left in them
to drift.

:func:`execute` is the high-level entry point the rest of the library
uses; it picks the delivery discipline from the algorithm type and the
bit sources from whichever of ``seed`` / ``assignment`` / ``tapes`` is
given.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from repro.exceptions import (
    OutputAlreadySetError,
    RuntimeModelError,
    SimulationError,
)
from repro.graphs.labeled_graph import LabeledGraph, Node, _freeze
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.tape import BitSource, FixedTape, RandomTape, RecordingTape
from repro.runtime.trace import ExecutionTrace, RoundRecord

TRACE_LEVELS = ("off", "outputs", "full")


def _message_sort_key(message: Any) -> str:
    return repr(_freeze(message))


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionPolicy:
    """Kernel configuration, orthogonal to the delivery discipline.

    Attributes
    ----------
    max_rounds:
        Default round budget for :meth:`ExecutionEngine.run` (a ``run``
        call may override it).
    stop_before_unfunded:
        The tape-funding rule.  ``True`` (the paper's ``l = min length``
        convention for simulations induced by an assignment, Section 2.2)
        stops *before* any round some node's tape cannot pay for, so
        state is never mutated by a partially funded round.  ``False``
        skips the check; a dry :class:`~repro.runtime.tape.FixedTape`
        then raises mid-round from ``draw`` — only useful for tests that
        exercise that failure mode.
    trace:
        ``"full"`` records messages, bits and new outputs per round;
        ``"outputs"`` records only the round's newly decided outputs
        (cheap round accounting, e.g. ``trace.output_round``);
        ``"off"`` records nothing (``result.trace is None``).
    """

    max_rounds: int = 10_000
    stop_before_unfunded: bool = True
    trace: str = "full"

    def __post_init__(self) -> None:
        if self.trace not in TRACE_LEVELS:
            raise RuntimeModelError(
                f"unknown trace level {self.trace!r}; expected one of {TRACE_LEVELS}"
            )
        if self.max_rounds < 0:
            raise RuntimeModelError(
                f"max_rounds must be nonnegative, got {self.max_rounds}"
            )


def _trace_level(record_trace: "bool | str | None", default: str = "full") -> str:
    """Normalize a ``record_trace`` flag (bool or level name) to a level."""
    if record_trace is None:
        return default
    if record_trace is True:
        return "full"
    if record_trace is False:
        return "off"
    if record_trace in TRACE_LEVELS:
        return record_trace
    raise RuntimeModelError(
        f"unknown trace level {record_trace!r}; expected a bool or one of {TRACE_LEVELS}"
    )


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


@dataclass
class ExecutionMetrics:
    """Instrumentation record for one execution.

    ``decided_per_round[r]`` is the number of nodes that first produced
    their output in round ``r`` (index 0 = decided at initialization);
    the entries sum to the number of decided nodes.  ``messages_sent``
    counts point-to-point payload deliveries (one broadcast by a node of
    degree ``d`` counts ``d``, as does one payload per port), making
    broadcast and port executions directly comparable.
    ``faults_injected`` counts the fault events the :mod:`repro.faults`
    subsystem injected into this execution (0 for bare runs and for
    runs under an empty plan).
    """

    rounds: int = 0
    messages_sent: int = 0
    bits_drawn: int = 0
    decided_per_round: list[int] = field(default_factory=list)
    faults_injected: int = 0
    wall_s: float = 0.0

    @property
    def nodes_decided(self) -> int:
        return sum(self.decided_per_round)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rounds": self.rounds,
            "messages_sent": self.messages_sent,
            "bits_drawn": self.bits_drawn,
            "nodes_decided": self.nodes_decided,
            "decided_per_round": list(self.decided_per_round),
            "faults_injected": self.faults_injected,
            "wall_s": self.wall_s,
        }


@dataclass
class EngineMetricsTotals:
    """Aggregate of every execution observed by a metrics collector."""

    executions: int = 0
    rounds: int = 0
    messages_sent: int = 0
    bits_drawn: int = 0
    nodes_decided: int = 0
    faults_injected: int = 0
    wall_s: float = 0.0

    def absorb(self, metrics: ExecutionMetrics) -> None:
        self.executions += 1
        self.rounds += metrics.rounds
        self.messages_sent += metrics.messages_sent
        self.bits_drawn += metrics.bits_drawn
        self.nodes_decided += metrics.nodes_decided
        self.faults_injected += metrics.faults_injected
        self.wall_s += metrics.wall_s

    def as_dict(self, include_wall: bool = True) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "executions": self.executions,
            "rounds": self.rounds,
            "messages_sent": self.messages_sent,
            "bits_drawn": self.bits_drawn,
            "nodes_decided": self.nodes_decided,
            "faults_injected": self.faults_injected,
        }
        if include_wall:
            payload["wall_s"] = self.wall_s
        return payload


_COLLECTORS: list[EngineMetricsTotals] = []


@contextmanager
def collect_engine_metrics() -> Iterator[EngineMetricsTotals]:
    """Accumulate the metrics of every engine run inside the ``with``.

    Collectors nest: each active collector absorbs every execution that
    completes while it is open.  The experiment runner wraps each
    experiment in one of these to attach a per-experiment ``metrics``
    block to ``RESULTS_experiments.json``.
    """
    totals = EngineMetricsTotals()
    _COLLECTORS.append(totals)
    try:
        yield totals
    finally:
        _COLLECTORS.remove(totals)


class RoundHook:
    """Observer of kernel progress; subclass and override what you need.

    ``on_round`` fires after every completed round (also for manual
    ``step()`` calls); ``on_start``/``on_finish`` bracket ``run()``.
    """

    def on_start(self, engine: "ExecutionEngine") -> None:  # pragma: no cover
        pass

    def on_round(
        self, engine: "ExecutionEngine", new_outputs: dict[Node, Any]
    ) -> None:  # pragma: no cover
        pass

    def on_finish(
        self, engine: "ExecutionEngine", result: "ExecutionResult"
    ) -> None:  # pragma: no cover
        pass


# ----------------------------------------------------------------------
# Delivery disciplines
# ----------------------------------------------------------------------


class DeliveryDiscipline(ABC):
    """How one round's emitted messages reach their receivers."""

    name: str = "delivery"

    @abstractmethod
    def emit(
        self, algorithm: Any, states: Mapping[Node, Any], graph: LabeledGraph
    ) -> dict[Node, Any]:
        """Each node's outbox for this round (validated)."""

    @abstractmethod
    def inbox(
        self, outboxes: Mapping[Node, Any], node: Node, graph: LabeledGraph
    ) -> tuple[Any, ...]:
        """The tuple handed to ``node``'s transition this round."""


class BroadcastDelivery(DeliveryDiscipline):
    """Anonymous broadcast: the sorted multiset of neighbor messages."""

    name = "broadcast"

    def emit(self, algorithm, states, graph):
        return {v: algorithm.message(states[v]) for v in graph.nodes}

    def inbox(self, outboxes, node, graph):
        return tuple(
            sorted(
                (outboxes[u] for u in graph.neighbors(node)),
                key=_message_sort_key,
            )
        )


class PortDelivery(DeliveryDiscipline):
    """Port-numbered delivery: one payload per port, indexed by the
    receiver's own port numbering."""

    name = "port"

    def emit(self, algorithm, states, graph):
        outboxes = {
            v: list(algorithm.messages(states[v], graph.degree(v)))
            for v in graph.nodes
        }
        for v in graph.nodes:
            if len(outboxes[v]) != graph.degree(v):
                raise RuntimeModelError(
                    f"node {v!r} produced {len(outboxes[v])} messages for "
                    f"{graph.degree(v)} ports"
                )
        return outboxes

    def inbox(self, outboxes, node, graph):
        return tuple(
            outboxes[u][graph.neighbor_to_port(u, node)]
            for u in graph.ports(node)
        )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclass
class ExecutionResult:
    """Outcome of running an algorithm on a graph.

    Attributes
    ----------
    outputs:
        Output per node; nodes that never decided are absent.
    rounds:
        Rounds actually executed.
    all_decided:
        Whether every node produced an output (a *successful* run).
    trace:
        Full per-round record (``None`` when tracing was disabled).
    metrics:
        Instrumentation for the run (``None`` only for results built by
        code outside the engine).
    """

    outputs: dict[Node, Any]
    rounds: int
    all_decided: bool
    trace: ExecutionTrace | None
    metrics: ExecutionMetrics | None = None

    @property
    def successful(self) -> bool:
        """The paper's success notion: every node decided within the
        rounds the run could fund (alias of ``all_decided``)."""
        return self.all_decided

    def output_labeling(self) -> dict[Node, Any]:
        """The output labeling ``o``; raises if some node is undecided."""
        if not self.all_decided:
            missing = self.rounds  # for the message only
            raise RuntimeModelError(
                f"execution did not decide every node within {missing} rounds"
            )
        return dict(self.outputs)


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


class ExecutionEngine:
    """The single synchronous round kernel behind every scheduler."""

    def __init__(
        self,
        algorithm: Any,
        graph: LabeledGraph,
        tapes: Mapping[Node, BitSource],
        delivery: DeliveryDiscipline,
        policy: ExecutionPolicy | None = None,
        hooks: Sequence[RoundHook] = (),
    ) -> None:
        missing = [v for v in graph.nodes if v not in tapes]
        if missing:
            raise RuntimeModelError(f"no bit source for nodes {missing!r}")
        self._algorithm = algorithm
        self._graph = graph
        self._tapes = dict(tapes)
        self._delivery = delivery
        self._policy = policy or ExecutionPolicy()
        self._hooks = list(hooks)
        self._states: dict[Node, Any] = {
            v: algorithm.init_state(graph.label(v), graph.degree(v))
            for v in graph.nodes
        }
        self._outputs: dict[Node, Any] = {}
        self._rounds = 0
        self._trace = (
            ExecutionTrace(algorithm.name) if self._policy.trace != "off" else None
        )
        self._metrics = ExecutionMetrics()
        self._payloads_per_round = sum(graph.degree(v) for v in graph.nodes)
        # Outputs may be decided already at round 0 (initialization).
        initial = self._note_outputs({})
        self._metrics.decided_per_round.append(len(initial))

    # ------------------------------------------------------------------

    @property
    def algorithm(self) -> Any:
        return self._algorithm

    @property
    def graph(self) -> LabeledGraph:
        return self._graph

    @property
    def delivery(self) -> DeliveryDiscipline:
        return self._delivery

    @property
    def policy(self) -> ExecutionPolicy:
        return self._policy

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def all_decided(self) -> bool:
        return len(self._outputs) == self._graph.num_nodes

    @property
    def metrics(self) -> ExecutionMetrics:
        return self._metrics

    def state_of(self, node: Node) -> Any:
        return self._states[node]

    def add_hook(self, hook: RoundHook) -> None:
        self._hooks.append(hook)

    def swap_graph(self, new_graph: LabeledGraph) -> None:
        """Replace the topology between rounds (dynamic networks).

        The node set must be invariant — states, tapes and outputs are
        keyed by node and survive the swap untouched; only delivery (and
        the per-round payload accounting) sees the new edges, starting
        with the next ``step()``.  Called by the topology hooks of
        :mod:`repro.dynamic`; the kernel itself knows nothing about
        churn semantics.
        """
        if new_graph.nodes != self._graph.nodes:
            raise RuntimeModelError(
                "swap_graph requires an invariant node set: "
                f"{self._graph.num_nodes} nodes became {new_graph.num_nodes} "
                "or the node identities changed"
            )
        self._graph = new_graph
        self._payloads_per_round = sum(
            new_graph.degree(v) for v in new_graph.nodes
        )

    def can_fund_round(self) -> bool:
        """Whether every node's tape can pay for one more round."""
        need = self._algorithm.bits_per_round
        return all(tape.remaining(need) for tape in self._tapes.values())

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one synchronous round."""
        if self._policy.stop_before_unfunded and not self.can_fund_round():
            raise RuntimeModelError(
                "cannot step: some node's bit tape is exhausted"
            )
        graph, algorithm = self._graph, self._algorithm
        outboxes = self._delivery.emit(algorithm, self._states, graph)
        bits_drawn: dict[Node, str] = {}
        new_states: dict[Node, Any] = {}
        for v in graph.nodes:
            received = self._delivery.inbox(outboxes, v, graph)
            bits = self._tapes[v].draw(algorithm.bits_per_round)
            bits_drawn[v] = bits
            new_states[v] = algorithm.transition(self._states[v], received, bits)
        self._states = new_states
        self._rounds += 1
        new_outputs = self._note_outputs(bits_drawn)
        self._metrics.rounds = self._rounds
        self._metrics.messages_sent += self._payloads_per_round
        self._metrics.bits_drawn += algorithm.bits_per_round * graph.num_nodes
        self._metrics.decided_per_round.append(len(new_outputs))
        if self._trace is not None:
            record = (
                RoundRecord(self._rounds, dict(outboxes), bits_drawn, new_outputs)
                if self._policy.trace == "full"
                else RoundRecord(self._rounds, {}, {}, new_outputs)
            )
            self._trace.rounds.append(record)
        for hook in self._hooks:
            hook.on_round(self, new_outputs)

    def _note_outputs(self, bits_drawn: dict[Node, str]) -> dict[Node, Any]:
        """Register newly decided nodes, enforcing irrevocability.

        The single source of truth for output enforcement: an output may
        never change once set — not to a different value and not back to
        ``None`` — and violations name the node, both values and the
        round, whichever delivery discipline is running.
        """
        new_outputs: dict[Node, Any] = {}
        for v in self._graph.nodes:
            value = self._algorithm.output(self._states[v])
            if v in self._outputs:
                if value is None or value != self._outputs[v]:
                    raise OutputAlreadySetError(
                        f"node {v!r} changed its irrevocable output from "
                        f"{self._outputs[v]!r} to {value!r} in round {self._rounds}"
                    )
            elif value is not None:
                self._outputs[v] = value
                new_outputs[v] = value
        return new_outputs

    def run(self, max_rounds: int | None = None) -> ExecutionResult:
        """Run until all nodes decide, tapes run dry, or the round limit."""
        if max_rounds is None:
            max_rounds = self._policy.max_rounds
        if max_rounds < 0:
            raise RuntimeModelError(f"max_rounds must be nonnegative, got {max_rounds}")
        # wall_s is a metrics-only field, stripped from canonical results.
        start = time.perf_counter()  # repro-lint: disable=DET001 -- wall-time metric only
        for hook in self._hooks:
            hook.on_start(self)
        while (
            not self.all_decided
            and self._rounds < max_rounds
            and (not self._policy.stop_before_unfunded or self.can_fund_round())
        ):
            self.step()
        self._metrics.wall_s += time.perf_counter() - start  # repro-lint: disable=DET001 -- wall-time metric only
        result = ExecutionResult(
            outputs=dict(self._outputs),
            rounds=self._rounds,
            all_decided=self.all_decided,
            trace=self._trace,
            metrics=self._metrics,
        )
        for collector in _COLLECTORS:
            collector.absorb(self._metrics)
        for hook in self._hooks:
            hook.on_finish(self, result)
        return result


# ----------------------------------------------------------------------
# The high-level entry point
# ----------------------------------------------------------------------

# Ambient fault injection (see repro.faults.context).  The engine knows
# nothing about fault semantics: repro.faults registers a zero-argument
# provider here on import, and execute() asks it for the active
# injection, if any, letting that injection wrap the resolved delivery,
# tapes and hooks.  When repro.faults is never imported the provider
# stays None and execute() pays a single `is None` check.
_INJECTION_PROVIDER: Any | None = None


def register_injection_provider(provider: Any) -> None:
    """Install the callable yielding the active fault injection (or
    ``None``).  Called once by :mod:`repro.faults.context` on import."""
    global _INJECTION_PROVIDER
    _INJECTION_PROVIDER = provider


# Ambient topology churn (see repro.dynamic.context), same shape as the
# fault provider: repro.dynamic registers a zero-argument provider on
# import, and execute() asks it for the active churn context, if any,
# letting that context append its per-execution TopologyHook.  Faults
# and churn compose: fault decisions key on (round, receiver, sender)
# and never on the edge set, so the two wrappers are orthogonal.
_TOPOLOGY_PROVIDER: Any | None = None


def register_topology_provider(provider: Any) -> None:
    """Install the callable yielding the active churn context (or
    ``None``).  Called once by :mod:`repro.dynamic.context` on import."""
    global _TOPOLOGY_PROVIDER
    _TOPOLOGY_PROVIDER = provider


def _infer_delivery(algorithm: Any) -> DeliveryDiscipline:
    from repro.runtime.port_model import PortAwareAlgorithm

    if isinstance(algorithm, PortAwareAlgorithm):
        return PortDelivery()
    if isinstance(algorithm, AnonymousAlgorithm):
        return BroadcastDelivery()
    # Duck-typed algorithms (tests build minimal ones): port-aware ones
    # have per-port `messages`, broadcast ones a single `message`.
    if hasattr(algorithm, "messages") and not hasattr(algorithm, "message"):
        return PortDelivery()
    return BroadcastDelivery()


def execute(
    algorithm: Any,
    graph: LabeledGraph,
    *,
    tapes: Mapping[Node, BitSource] | None = None,
    assignment: Mapping[Node, str] | None = None,
    seed: int | None = None,
    delivery: DeliveryDiscipline | None = None,
    max_rounds: int | None = None,
    record_trace: "bool | str | None" = None,
    require_decided: bool = False,
    policy: ExecutionPolicy | None = None,
    hooks: Sequence[RoundHook] = (),
) -> ExecutionResult:
    """Run ``algorithm`` on ``graph`` through the unified kernel.

    Randomness comes from exactly one of:

    * ``seed`` — a seeded randomized execution with per-node recording
      tapes, so ``result.trace.assignment()`` replays it;
    * ``assignment`` — the paper's *simulation induced by b* (Section
      2.2): each node replays its fixed bitstring and the run lasts at
      most ``l = min_v floor(|b(v)| / bits_per_round)`` rounds;
    * ``tapes`` — explicit per-node :class:`~repro.runtime.tape.BitSource`s;
    * none of them — a deterministic run (``bits_per_round == 0``).

    ``delivery`` defaults to the discipline matching the algorithm type
    (port-aware algorithms get :class:`PortDelivery`, broadcast ones
    :class:`BroadcastDelivery`).  ``record_trace`` accepts a bool or a
    trace level; it defaults to ``"off"`` for assignment-induced
    simulations (they run in bulk inside searches) and ``"full"``
    otherwise.  ``require_decided=True`` raises
    :class:`~repro.exceptions.SimulationError` unless every node decided
    — the Las-Vegas contract for seeded and deterministic runs.
    """
    given = [name for name, value in
             (("tapes", tapes), ("assignment", assignment), ("seed", seed))
             if value is not None]
    if len(given) > 1:
        raise SimulationError(
            f"pass at most one randomness source, got {' and '.join(given)}"
        )

    bits_per_round = algorithm.bits_per_round
    funded_limit: int | None = None
    if assignment is not None:
        missing = [v for v in graph.nodes if v not in assignment]
        if missing:
            raise SimulationError(f"assignment does not cover nodes {missing!r}")
        if bits_per_round == 0:
            raise SimulationError(
                "simulations induced by an assignment require a randomized "
                "algorithm (bits_per_round >= 1); deterministic algorithms "
                "run via execute() with no randomness source"
            )
        tapes = {v: FixedTape(assignment[v]) for v in graph.nodes}
        funded_limit = min(
            len(assignment[v]) // bits_per_round for v in graph.nodes
        )
    elif seed is not None:
        tapes = {
            v: RecordingTape(RandomTape(seed * 1_000_003 + index))
            for index, v in enumerate(graph.nodes)
        }
    elif tapes is None:
        if bits_per_round != 0:
            raise SimulationError(
                f"{algorithm.name} is randomized (bits_per_round="
                f"{bits_per_round}); pass seed=, assignment= or tapes="
            )
        tapes = {v: FixedTape("") for v in graph.nodes}

    if policy is None:
        trace = _trace_level(
            record_trace, default="off" if assignment is not None else "full"
        )
        policy = ExecutionPolicy(trace=trace)
    limit = policy.max_rounds if max_rounds is None else max_rounds
    if funded_limit is not None:
        limit = funded_limit if max_rounds is None else min(limit, funded_limit)

    delivery = delivery or _infer_delivery(algorithm)
    if _INJECTION_PROVIDER is not None:
        injection = _INJECTION_PROVIDER()
        if injection is not None:
            delivery, tapes, hooks = injection.wrap(delivery, tapes, graph, hooks)
    if _TOPOLOGY_PROVIDER is not None:
        churn = _TOPOLOGY_PROVIDER()
        if churn is not None:
            hooks = [*hooks, churn.hook_for(graph)]

    engine = ExecutionEngine(
        algorithm,
        graph,
        tapes,
        delivery=delivery,
        policy=policy,
        hooks=hooks,
    )
    result = engine.run(max_rounds=limit)
    if require_decided and not result.all_decided:
        suffix = f" with seed {seed}" if seed is not None else ""
        raise SimulationError(
            f"{algorithm.name} did not terminate within {limit} rounds "
            f"on {graph!r}{suffix}"
        )
    return result
